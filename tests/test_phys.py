"""Physical-layer tests: links, clock domains, CDC FIFOs."""

import pytest

from repro.phys.cdc import CdcFifo
from repro.phys.clocking import ClockDomain, ClockedRegion, make_clock_domain
from repro.phys.link import LinkSpec, PhysicalLink, phits_per_flit
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.transport.flit import Flit


def flit(seq=0, count=1, packet_id=1):
    return Flit(
        packet_id=packet_id, seq=seq, count=count, dest=0, src=1, priority=0,
        lock_related=False,
    )


class TestSerialization:
    def test_phits_per_flit(self):
        assert phits_per_flit(72, 72) == 1
        assert phits_per_flit(72, 36) == 2
        assert phits_per_flit(72, 16) == 5

    def test_phits_per_flit_edge_cases(self):
        # exact division, serial single-wire, phit wider than flit,
        # degenerate 1-bit flit
        assert phits_per_flit(64, 32) == 2
        assert phits_per_flit(72, 1) == 72
        assert phits_per_flit(16, 128) == 1
        assert phits_per_flit(1, 1) == 1

    def test_bad_widths(self):
        with pytest.raises(ValueError):
            phits_per_flit(0, 8)
        with pytest.raises(ValueError):
            phits_per_flit(8, 0)
        with pytest.raises(ValueError):
            phits_per_flit(-8, -8)

    def _transit_cycles(self, phit_bits, pipeline=0):
        sim = Simulator()
        up = sim.new_queue("up", capacity=4)
        down = sim.new_queue("down", capacity=4)
        link = sim.add(
            PhysicalLink(
                "link", up, down, flit_bits=72, phit_bits=phit_bits,
                pipeline_latency=pipeline,
            )
        )
        up.push(flit())
        sim.run_until(lambda: bool(down), max_cycles=200)
        return sim.cycle, link

    def test_full_width_is_fast(self):
        full, __ = self._transit_cycles(72)
        half, __ = self._transit_cycles(36)
        quarter, __ = self._transit_cycles(18)
        assert full < half < quarter

    def test_pipeline_latency_adds(self):
        base, __ = self._transit_cycles(72, pipeline=0)
        piped, __ = self._transit_cycles(72, pipeline=3)
        assert piped == base + 3

    def test_phit_accounting(self):
        __, link = self._transit_cycles(36)
        assert link.flits_carried == 1
        assert link.phits_carried == 2

    def test_bandwidth_model(self):
        sim = Simulator()
        up, down = sim.new_queue("u"), sim.new_queue("d")
        link = PhysicalLink("l", up, down, flit_bits=72, phit_bits=36)
        assert link.bandwidth_bits_per_cycle == 36.0
        assert link.latency_cycles == 2

    def test_backpressure_no_loss(self):
        """A full downstream queue stalls the link; nothing is dropped."""
        sim = Simulator()
        up = sim.new_queue("up", capacity=16)
        down = sim.new_queue("down", capacity=1)
        sim.add(PhysicalLink("link", up, down, flit_bits=72, phit_bits=72))
        for i in range(8):
            up.push(flit(seq=0, count=1))
        received = []
        def pump():
            # consume at most one flit every 3 cycles
            if sim.cycle % 3 == 0 and down:
                received.append(down.pop())
            return len(received) >= 8
        sim.run_until(pump, max_cycles=500)
        assert len(received) == 8

    def test_narrow_link_backpressure_accounting(self):
        """Serialized + slow consumer: every flit arrives in order and the
        flit/phit counters reconcile exactly with the serialization
        factor."""
        sim = Simulator()
        up = sim.new_queue("up", capacity=16)
        down = sim.new_queue("down", capacity=2)
        link = sim.add(
            PhysicalLink("link", up, down, flit_bits=72, phit_bits=18,
                         pipeline_latency=2)
        )
        for i in range(6):
            up.push(flit(packet_id=i))
        received = []
        def pump():
            if sim.cycle % 5 == 0 and down:
                received.append(down.pop())
            return len(received) >= 6
        sim.run_until(pump, max_cycles=1000)
        assert [f.packet_id for f in received] == list(range(6))
        assert link.flits_carried == 6
        assert link.phits_carried == 6 * link.serialization == 24
        assert link.in_flight == 0 and link.idle()

    def test_wake_protocol_link_retires_and_wakes(self):
        """An idle link leaves the schedule and a committed upstream push
        brings it back — the activity kernel never loses a flit."""
        sim = Simulator()
        up = sim.new_queue("up", capacity=4)
        down = sim.new_queue("down", capacity=4)
        link = sim.add(PhysicalLink("link", up, down, flit_bits=72,
                                    phit_bits=36))
        sim.run(32)  # several retire sweeps with nothing to do
        assert link.is_idle()
        assert sim.active_count == 0
        up.push(flit())
        sim.run_until(lambda: bool(down), max_cycles=64)
        assert down.pop().packet_id == 1
        sim.run(32)
        assert sim.active_count == 0


class TestLinkSpec:
    def test_default_is_transparent_ideal_wire(self):
        spec = LinkSpec()
        assert spec.transparent(crosses_domains=False)
        assert not spec.transparent(crosses_domains=True)

    def test_any_physical_knob_is_not_transparent(self):
        assert not LinkSpec(phit_bits=32).transparent(False)
        assert not LinkSpec(pipeline_latency=1).transparent(False)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(phit_bits=0)
        with pytest.raises(ValueError):
            LinkSpec(pipeline_latency=-1)
        with pytest.raises(ValueError):
            LinkSpec(sync_stages=0)
        with pytest.raises(ValueError):
            LinkSpec(capacity=0)


class TestLinkCdc:
    def _cross(self, prod_div=1, cons_div=1, cons_phase=0, stages=2,
               flits=4, strict=False):
        """Push ``flits`` flits through a CDC link; return delivery cycles."""
        sim = Simulator(strict=strict)
        up = sim.new_queue("up", capacity=8)
        down = sim.new_queue("down", capacity=8)
        sim.add(
            PhysicalLink(
                "link", up, down, flit_bits=64, phit_bits=32,
                producer_domain=ClockDomain("p", prod_div),
                consumer_domain=ClockDomain("c", cons_div, cons_phase),
                sync_stages=stages,
            )
        )
        for i in range(flits):
            up.push(flit(packet_id=i))
        arrivals = []
        def drain():
            while down:
                arrivals.append((down.pop().packet_id, sim.cycle))
            return len(arrivals) >= flits
        sim.run_until(drain, max_cycles=2000)
        return arrivals

    def test_cdc_adds_sync_latency(self):
        same = self._cross(prod_div=1, cons_div=1, stages=2)
        # Same-name domains would not cross; different names at equal
        # ratios still synchronize — compare against a no-CDC link.
        sim = Simulator()
        up, down = sim.new_queue("u", capacity=8), sim.new_queue("d", capacity=8)
        sim.add(PhysicalLink("l", up, down, flit_bits=64, phit_bits=32))
        up.push(flit())
        sim.run_until(lambda: bool(down), max_cycles=100)
        no_cdc_first = sim.cycle
        assert same[0][1] > no_cdc_first

    def test_cdc_preserves_order(self):
        arrivals = self._cross(prod_div=2, cons_div=3, flits=6)
        assert [pid for pid, _ in arrivals] == list(range(6))

    @pytest.mark.parametrize("prod_div", [1, 2, 3])
    @pytest.mark.parametrize("cons_div,cons_phase", [(1, 0), (2, 1), (4, 3)])
    def test_cdc_determinism_across_divisor_phase_sweeps(
        self, prod_div, cons_div, cons_phase
    ):
        """Strict and activity kernels agree on every (divisor, phase)
        combination — CDC timing is an optimisation-stable function of
        visible state."""
        activity = self._cross(prod_div, cons_div, cons_phase, strict=False)
        reference = self._cross(prod_div, cons_div, cons_phase, strict=True)
        assert activity == reference


class TestClockDomains:
    def test_edges(self):
        slow = ClockDomain("slow", divisor=3)
        assert [slow.active(c) for c in range(6)] == [
            True, False, False, True, False, False,
        ]

    def test_phase(self):
        shifted = ClockDomain("s", divisor=2, phase=1)
        assert not shifted.active(0)
        assert shifted.active(1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ClockDomain("x", divisor=0)
        with pytest.raises(ValueError):
            ClockDomain("x", divisor=2, phase=2)

    def test_clocked_region_ticks_at_ratio(self):
        class Probe(Component):
            def __init__(self):
                super().__init__("probe")
                self.local_cycles = []
            def tick(self, cycle):
                self.local_cycles.append(cycle)

        sim = Simulator()
        region = ClockedRegion("slow", ClockDomain("slow", divisor=4))
        probe = region.add(Probe())
        sim.add(region)
        sim.run(12)
        assert len(probe.local_cycles) == 3


class TestCdcFifo:
    def _fifo(self, prod_div=1, cons_div=1, stages=2, capacity=4):
        sim = Simulator()
        fifo = sim.add(
            CdcFifo(
                "cdc",
                ClockDomain("p", prod_div),
                ClockDomain("c", cons_div),
                capacity=capacity,
                sync_stages=stages,
            )
        )
        return sim, fifo

    def test_sync_latency_in_consumer_edges(self):
        sim, fifo = self._fifo(stages=2)
        fifo.push("x")
        sim.run(1)
        assert not fifo.can_pop()
        sim.run(1)
        assert fifo.can_pop()
        assert fifo.pop() == "x"

    def test_slow_consumer_clock_stretches_latency(self):
        sim, fifo = self._fifo(cons_div=4, stages=2)
        fifo.push("x")
        sim.run(4)
        assert not fifo.can_pop()
        sim.run(4)
        assert fifo.can_pop()

    def test_order_preserved(self):
        sim, fifo = self._fifo()
        fifo.push(1)
        fifo.push(2)
        sim.run(3)
        assert fifo.pop() == 1
        assert fifo.pop() == 2

    def test_capacity_includes_crossing(self):
        sim, fifo = self._fifo(capacity=2)
        fifo.push(1)
        fifo.push(2)
        assert not fifo.can_push()
        with pytest.raises(OverflowError):
            fifo.push(3)

    def test_pop_empty_raises(self):
        __, fifo = self._fifo()
        with pytest.raises(IndexError):
            fifo.pop()

    def test_bad_params(self):
        with pytest.raises(ValueError):
            CdcFifo("x", ClockDomain("a"), ClockDomain("b"), capacity=0)
        with pytest.raises(ValueError):
            CdcFifo("x", ClockDomain("a"), ClockDomain("b"), sync_stages=0)

    def test_wake_protocol(self):
        """The FIFO retires when nothing is crossing, self-wakes on push,
        and wakes registered consumers when items mature."""
        sim, fifo = self._fifo(stages=2)

        class Consumer(Component):
            def __init__(self):
                super().__init__("consumer")
                self.got = []
            def is_idle(self):
                return not fifo.can_pop()
            def tick(self, cycle):
                while fifo.can_pop():
                    self.got.append(fifo.pop())

        consumer = sim.add(Consumer())
        fifo.wake_on_push(consumer)
        sim.run(32)  # both idle and retired
        assert fifo.is_idle() and sim.active_count == 0
        fifo.push("a")
        assert not fifo.is_idle()
        sim.run(16)
        assert consumer.got == ["a"]
        assert sim.active_count == 0  # everything re-retired

    def test_standalone_manual_tick_still_delivers(self):
        """A FIFO ticked by hand (no Simulator) publishes matured items
        immediately — the documented standalone contract."""
        fifo = CdcFifo("solo", ClockDomain("p"), ClockDomain("c"),
                       sync_stages=2)
        fifo.push("a")
        for cycle in range(4):
            fifo.tick(cycle)
        assert fifo.can_pop() and fifo.pop() == "a"
        assert fifo.in_flight == 0

    def test_maturation_commits_like_a_queue(self):
        """Visibility flips at commit time, never mid-cycle: results are
        identical under both kernels and independent of whether the
        consumer registered before or after the FIFO."""
        def run(strict, consumer_first):
            sim = Simulator(strict=strict)
            fifo = CdcFifo("cdc", ClockDomain("p"), ClockDomain("c"),
                           sync_stages=2)

            class Consumer(Component):
                def __init__(self):
                    super().__init__("consumer")
                    self.got = []
                def is_idle(self):
                    return not fifo.can_pop()
                def tick(self, cycle):
                    while fifo.can_pop():
                        self.got.append((cycle, fifo.pop()))

            consumer = Consumer()
            for c in ((consumer, fifo) if consumer_first else (fifo, consumer)):
                sim.add(c)
            fifo.wake_on_push(consumer)
            sim.run(10)
            fifo.push("x")
            sim.run(10)
            return consumer.got

        outcomes = {
            (strict, first): tuple(run(strict, first))
            for strict in (False, True)
            for first in (False, True)
        }
        assert len(set(outcomes.values())) == 1, outcomes

    def test_wake_on_pop(self):
        sim, fifo = self._fifo(capacity=1)

        class Producer(Component):
            def __init__(self):
                super().__init__("producer")
                self.sent = 0
            def is_idle(self):
                return self.sent >= 2 or not fifo.can_push()
            def tick(self, cycle):
                if self.sent < 2 and fifo.can_push():
                    fifo.push(self.sent)
                    self.sent += 1

        producer = sim.add(Producer())
        fifo.wake_on_pop(producer)
        sim.run(12)
        assert fifo.can_pop()
        assert producer.sent == 1  # capacity 1: second push blocked
        assert fifo.pop() == 0    # frees space and wakes the producer
        sim.run(12)
        assert producer.sent == 2


class TestMakeClockDomain:
    def test_coercions(self):
        assert make_clock_domain("a", 3) == ClockDomain("a", 3)
        assert make_clock_domain("a", (4, 1)) == ClockDomain("a", 4, 1)
        dom = ClockDomain("a", 2)
        assert make_clock_domain("a", dom) is dom
        renamed = make_clock_domain("b", dom)
        assert renamed.name == "b" and renamed.divisor == 2

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            make_clock_domain("a", "fast")


class TestDomainGatedComponents:
    def test_set_clock_domain_gates_ticks_in_both_kernels(self):
        for strict in (False, True):
            class Probe(Component):
                def __init__(self):
                    super().__init__("probe")
                    self.ticks = []
                def tick(self, cycle):
                    self.ticks.append(cycle)

            sim = Simulator(strict=strict)
            probe = Probe()
            probe.set_clock_domain(ClockDomain("slow", 3, 1))
            sim.add(probe)
            sim.run(10)
            assert probe.ticks == [1, 4, 7], f"strict={strict}"

    def test_divisor_one_domain_is_reference_clock(self):
        class Probe(Component):
            def __init__(self):
                super().__init__("probe")
                self.ticks = 0
            def tick(self, cycle):
                self.ticks += 1

        sim = Simulator()
        probe = Probe()
        probe.set_clock_domain(ClockDomain("fast", 1))
        sim.add(probe)
        sim.run(8)
        assert probe.ticks == 8
        probe.set_clock_domain(None)
        assert probe._clk_divisor == 1
