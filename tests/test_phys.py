"""Physical-layer tests: links, clock domains, CDC FIFOs."""

import pytest

from repro.phys.cdc import CdcFifo
from repro.phys.clocking import ClockDomain, ClockedRegion
from repro.phys.link import PhysicalLink, phits_per_flit
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.transport.flit import Flit


def flit(seq=0, count=1):
    return Flit(
        packet_id=1, seq=seq, count=count, dest=0, src=1, priority=0,
        lock_related=False,
    )


class TestSerialization:
    def test_phits_per_flit(self):
        assert phits_per_flit(72, 72) == 1
        assert phits_per_flit(72, 36) == 2
        assert phits_per_flit(72, 16) == 5

    def test_bad_widths(self):
        with pytest.raises(ValueError):
            phits_per_flit(0, 8)

    def _transit_cycles(self, phit_bits, pipeline=0):
        sim = Simulator()
        up = sim.new_queue("up", capacity=4)
        down = sim.new_queue("down", capacity=4)
        link = sim.add(
            PhysicalLink(
                "link", up, down, flit_bits=72, phit_bits=phit_bits,
                pipeline_latency=pipeline,
            )
        )
        up.push(flit())
        sim.run_until(lambda: bool(down), max_cycles=200)
        return sim.cycle, link

    def test_full_width_is_fast(self):
        full, __ = self._transit_cycles(72)
        half, __ = self._transit_cycles(36)
        quarter, __ = self._transit_cycles(18)
        assert full < half < quarter

    def test_pipeline_latency_adds(self):
        base, __ = self._transit_cycles(72, pipeline=0)
        piped, __ = self._transit_cycles(72, pipeline=3)
        assert piped == base + 3

    def test_phit_accounting(self):
        __, link = self._transit_cycles(36)
        assert link.flits_carried == 1
        assert link.phits_carried == 2

    def test_bandwidth_model(self):
        sim = Simulator()
        up, down = sim.new_queue("u"), sim.new_queue("d")
        link = PhysicalLink("l", up, down, flit_bits=72, phit_bits=36)
        assert link.bandwidth_bits_per_cycle == 36.0
        assert link.latency_cycles == 2

    def test_backpressure_no_loss(self):
        """A full downstream queue stalls the link; nothing is dropped."""
        sim = Simulator()
        up = sim.new_queue("up", capacity=16)
        down = sim.new_queue("down", capacity=1)
        sim.add(PhysicalLink("link", up, down, flit_bits=72, phit_bits=72))
        for i in range(8):
            up.push(flit(seq=0, count=1))
        received = []
        def pump():
            # consume at most one flit every 3 cycles
            if sim.cycle % 3 == 0 and down:
                received.append(down.pop())
            return len(received) >= 8
        sim.run_until(pump, max_cycles=500)
        assert len(received) == 8


class TestClockDomains:
    def test_edges(self):
        slow = ClockDomain("slow", divisor=3)
        assert [slow.active(c) for c in range(6)] == [
            True, False, False, True, False, False,
        ]

    def test_phase(self):
        shifted = ClockDomain("s", divisor=2, phase=1)
        assert not shifted.active(0)
        assert shifted.active(1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ClockDomain("x", divisor=0)
        with pytest.raises(ValueError):
            ClockDomain("x", divisor=2, phase=2)

    def test_clocked_region_ticks_at_ratio(self):
        class Probe(Component):
            def __init__(self):
                super().__init__("probe")
                self.local_cycles = []
            def tick(self, cycle):
                self.local_cycles.append(cycle)

        sim = Simulator()
        region = ClockedRegion("slow", ClockDomain("slow", divisor=4))
        probe = region.add(Probe())
        sim.add(region)
        sim.run(12)
        assert len(probe.local_cycles) == 3


class TestCdcFifo:
    def _fifo(self, prod_div=1, cons_div=1, stages=2, capacity=4):
        sim = Simulator()
        fifo = sim.add(
            CdcFifo(
                "cdc",
                ClockDomain("p", prod_div),
                ClockDomain("c", cons_div),
                capacity=capacity,
                sync_stages=stages,
            )
        )
        return sim, fifo

    def test_sync_latency_in_consumer_edges(self):
        sim, fifo = self._fifo(stages=2)
        fifo.push("x")
        sim.run(1)
        assert not fifo.can_pop()
        sim.run(1)
        assert fifo.can_pop()
        assert fifo.pop() == "x"

    def test_slow_consumer_clock_stretches_latency(self):
        sim, fifo = self._fifo(cons_div=4, stages=2)
        fifo.push("x")
        sim.run(4)
        assert not fifo.can_pop()
        sim.run(4)
        assert fifo.can_pop()

    def test_order_preserved(self):
        sim, fifo = self._fifo()
        fifo.push(1)
        fifo.push(2)
        sim.run(3)
        assert fifo.pop() == 1
        assert fifo.pop() == 2

    def test_capacity_includes_crossing(self):
        sim, fifo = self._fifo(capacity=2)
        fifo.push(1)
        fifo.push(2)
        assert not fifo.can_push()
        with pytest.raises(OverflowError):
            fifo.push(3)

    def test_pop_empty_raises(self):
        __, fifo = self._fifo()
        with pytest.raises(IndexError):
            fifo.pop()

    def test_bad_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CdcFifo("x", ClockDomain("a"), ClockDomain("b"), capacity=0)
        with pytest.raises(ValueError):
            CdcFifo("x", ClockDomain("a"), ClockDomain("b"), sync_stages=0)
