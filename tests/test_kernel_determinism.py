"""Activity-driven kernel vs brute-force reference: byte-identical runs.

The activity scheduler (wake/is_idle, dirty-queue commits, router early
exits) is only legal if it is an *optimisation*: every seeded workload
must produce exactly the same per-component stats, queue counters and
trace sequence as ``Simulator(strict=True)``, which ticks every component
and commits every queue each cycle.  These tests pin that contract.
"""

import pytest

import repro.core.transaction as txn_mod
import repro.transport.flit as flit_mod
from repro.ip.masters import (
    cpu_workload,
    dma_workload,
    random_workload,
    sync_workload,
)
from repro.sim.fingerprint import fingerprint, reset_ids
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.soc import (
    FaultSchedule,
    InitiatorSpec,
    LinkSpec,
    SocBuilder,
    TargetSpec,
)
from repro.transport import topology as topo


@pytest.fixture(autouse=True)
def _fresh_global_ids():
    """txn/packet ids come from process-global counters; reset them so the
    two builds of the same SoC are byte-comparable."""
    txn_ids, packet_ids = txn_mod._txn_ids, flit_mod._flit_packet_ids
    yield
    txn_mod._txn_ids, flit_mod._flit_packet_ids = txn_ids, packet_ids


_reset_ids = reset_ids


def build_mixed_soc(strict):
    """Heterogeneous-protocol SoC covering AHB/AXI/OCP/proprietary NIUs."""
    _reset_ids()
    ranges = [(0, 0x4000), (0x4000, 0x4000)]
    builder = SocBuilder(trace=Tracer(enabled=True), strict_kernel=strict)
    builder.add_initiator(
        InitiatorSpec(
            "cpu_ahb", "AHB", cpu_workload("cpu_ahb", ranges, count=20, seed=1)
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "gpu_axi", "AXI",
            random_workload(
                "gpu_axi", ranges, count=20, seed=2, tags=4, rate=0.3,
                burst_beats=(1, 4, 8),
            ),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "dsp_ocp", "OCP",
            random_workload("dsp_ocp", ranges, count=20, seed=3, threads=2,
                            rate=0.3),
            protocol_kwargs={"threads": 2},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "acc_msg", "PROPRIETARY",
            dma_workload("acc_msg", base=0x2000, bytes_total=256),
        )
    )
    builder.add_target(
        TargetSpec("dram", size=0x4000, read_latency=6, write_latency=3)
    )
    builder.add_target(
        TargetSpec("sram", size=0x4000, read_latency=2, write_latency=1)
    )
    return builder.build()


def build_lock_soc(strict):
    """Legacy-lock critical sections: exercises router LOCK ownership and
    target-NIU lock managers, the stateful transport paths."""
    _reset_ids()
    builder = SocBuilder(trace=Tracer(enabled=True), strict_kernel=strict)
    for i in range(2):
        builder.add_initiator(
            InitiatorSpec(
                f"sync{i}", "AHB",
                sync_workload(f"sync{i}", "lock", sema_addr=0x0,
                              work_addr=0x100 + 0x40 * i, iterations=3,
                              seed=i),
            )
        )
    builder.add_target(
        TargetSpec("mem", size=0x1000, read_latency=2, write_latency=1)
    )
    return builder.build()


def build_gals_soc(strict):
    """GALS + narrow serialized links + CDC boundaries: initiators and
    targets in three clock regions, a distinct fabric domain, phit-level
    serialization on every class of link and wire pipelining between
    routers — the physical layer at its least transparent."""
    _reset_ids()
    ranges = [(0, 0x2000), (0x2000, 0x2000)]
    builder = SocBuilder(
        trace=Tracer(enabled=True),
        strict_kernel=strict,
        links={
            "router": LinkSpec(phit_bits=48, pipeline_latency=1),
            "endpoint": LinkSpec(phit_bits=96, sync_stages=3),
        },
        clock_domains={"cpu": 2, "io": (3, 1), "fab": 1},
        fabric_region="fab",
    )
    builder.add_initiator(
        InitiatorSpec(
            "cpu_ahb", "AHB",
            cpu_workload("cpu_ahb", ranges, count=15, seed=1),
            region="cpu",
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "gpu_axi", "AXI",
            random_workload(
                "gpu_axi", ranges, count=15, seed=2, tags=4, rate=0.3,
                burst_beats=(1, 4),
            ),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "acc_msg", "PROPRIETARY",
            dma_workload("acc_msg", base=0x1000, bytes_total=128),
        )
    )
    builder.add_target(
        TargetSpec("dram", size=0x2000, read_latency=6, write_latency=3,
                   region="io")
    )
    builder.add_target(
        TargetSpec("sram", size=0x2000, read_latency=2, write_latency=1,
                   region="cpu")
    )
    return builder.build()


def build_vc_gals_soc(strict):
    """Virtual channels + GALS + serialized links: a 2-VC dateline torus
    under DOR routing, VC-multiplexed physical links (per-VC credits) on
    every connection and three clock regions — the new transport machinery
    at its least transparent, pinned byte-identical between kernels."""
    _reset_ids()
    ranges = [(0, 0x2000), (0x2000, 0x2000)]
    builder = SocBuilder(
        trace=Tracer(enabled=True),
        strict_kernel=strict,
        topology=topo.torus(3, 3, endpoints=5),
        routing="dor",
        vcs=2,
        vc_policy="dateline",
        links={
            "router": LinkSpec(phit_bits=48, pipeline_latency=1),
            "endpoint": LinkSpec(phit_bits=96, sync_stages=3),
        },
        clock_domains={"cpu": 2, "io": (3, 1), "fab": 1},
        fabric_region="fab",
    )
    builder.add_initiator(
        InitiatorSpec(
            "cpu_ahb", "AHB",
            cpu_workload("cpu_ahb", ranges, count=15, seed=1),
            region="cpu",
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "gpu_axi", "AXI",
            random_workload(
                "gpu_axi", ranges, count=15, seed=2, tags=4, rate=0.3,
                burst_beats=(1, 4),
            ),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "acc_msg", "PROPRIETARY",
            dma_workload("acc_msg", base=0x1000, bytes_total=128),
        )
    )
    builder.add_target(
        TargetSpec("dram", size=0x2000, read_latency=6, write_latency=3,
                   region="io")
    )
    builder.add_target(
        TargetSpec("sram", size=0x2000, read_latency=2, write_latency=1,
                   region="cpu")
    )
    return builder.build()


def build_adaptive_gals_soc(strict):
    """Adaptive routing + escape VCs + GALS + serialized links: minimal-
    adaptive route choice is a per-cycle congestion-scored allocation
    decision, so this pins that the decision stream — and the per-pair
    resequencing at ejection — is byte-identical between kernels."""
    _reset_ids()
    ranges = [(0, 0x2000), (0x2000, 0x2000)]
    builder = SocBuilder(
        trace=Tracer(enabled=True),
        strict_kernel=strict,
        topology=topo.torus(3, 3, endpoints=5),
        routing="adaptive",
        vcs=4,
        links={
            "router": LinkSpec(phit_bits=48, pipeline_latency=1),
            "endpoint": LinkSpec(phit_bits=96, sync_stages=3),
        },
        clock_domains={"cpu": 2, "io": (3, 1), "fab": 1},
        fabric_region="fab",
    )
    builder.add_initiator(
        InitiatorSpec(
            "cpu_ahb", "AHB",
            cpu_workload("cpu_ahb", ranges, count=15, seed=1),
            region="cpu",
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "gpu_axi", "AXI",
            random_workload(
                "gpu_axi", ranges, count=15, seed=2, tags=4, rate=0.3,
                burst_beats=(1, 4),
            ),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "acc_msg", "PROPRIETARY",
            dma_workload("acc_msg", base=0x1000, bytes_total=128),
        )
    )
    builder.add_target(
        TargetSpec("dram", size=0x2000, read_latency=6, write_latency=3,
                   region="io")
    )
    builder.add_target(
        TargetSpec("sram", size=0x2000, read_latency=2, write_latency=1,
                   region="cpu")
    )
    return builder.build()


def build_faulted_adaptive_gals_soc(strict):
    """The adaptive GALS SoC with a mid-run link failure and heal: fault
    epochs flip route tables and mask ports while CDC and serialized
    links are live, so this pins that fault application — and the
    degraded-mode decision stream behind it — is byte-identical between
    kernels (the wheel must land on each fault edge exactly)."""
    soc = _build_gals_like(
        strict,
        routing="adaptive",
        vcs=4,
        faults=(FaultSchedule()
                .link_down(400, (0, 0), (1, 0))
                .link_up(900, (0, 0), (1, 0))),
    )
    return soc


def _build_gals_like(strict, **extra):
    _reset_ids()
    ranges = [(0, 0x2000), (0x2000, 0x2000)]
    builder = SocBuilder(
        trace=Tracer(enabled=True),
        strict_kernel=strict,
        topology=topo.torus(3, 3, endpoints=5),
        links={
            "router": LinkSpec(phit_bits=48, pipeline_latency=1),
            "endpoint": LinkSpec(phit_bits=96, sync_stages=3),
        },
        clock_domains={"cpu": 2, "io": (3, 1), "fab": 1},
        fabric_region="fab",
        **extra,
    )
    builder.add_initiator(
        InitiatorSpec(
            "cpu_ahb", "AHB",
            cpu_workload("cpu_ahb", ranges, count=15, seed=1),
            region="cpu",
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "gpu_axi", "AXI",
            random_workload(
                "gpu_axi", ranges, count=15, seed=2, tags=4, rate=0.3,
                burst_beats=(1, 4),
            ),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "acc_msg", "PROPRIETARY",
            dma_workload("acc_msg", base=0x1000, bytes_total=128),
        )
    )
    builder.add_target(
        TargetSpec("dram", size=0x2000, read_latency=6, write_latency=3,
                   region="io")
    )
    builder.add_target(
        TargetSpec("sram", size=0x2000, read_latency=2, write_latency=1,
                   region="cpu")
    )
    return builder.build()


@pytest.mark.parametrize(
    "build, cycles",
    [
        (build_mixed_soc, 4000),
        (build_lock_soc, 3000),
        (build_gals_soc, 5000),
        (build_vc_gals_soc, 5000),
        (build_adaptive_gals_soc, 5000),
        (build_faulted_adaptive_gals_soc, 5000),
    ],
    ids=[
        "mixed-protocols",
        "legacy-lock",
        "gals-serialized-links",
        "vc-dateline-gals",
        "adaptive-escape-gals",
        "faulted-adaptive-gals",
    ],
)
def test_activity_kernel_matches_reference(build, cycles):
    activity = fingerprint(build(strict=False), cycles)
    reference = fingerprint(build(strict=True), cycles)
    for key in reference:
        assert activity[key] == reference[key], f"{key} diverged"


@pytest.mark.parametrize(
    "build, cycles",
    [
        (build_mixed_soc, 4000),
        (build_lock_soc, 3000),
        (build_gals_soc, 5000),
        (build_vc_gals_soc, 5000),
        (build_adaptive_gals_soc, 5000),
        (build_faulted_adaptive_gals_soc, 5000),
    ],
    ids=[
        "mixed-protocols",
        "legacy-lock",
        "gals-serialized-links",
        "vc-dateline-gals",
        "adaptive-escape-gals",
        "faulted-adaptive-gals",
    ],
)
def test_router_cores_match_object_reference(build, cycles, monkeypatch):
    """PR 7: the array and batched struct-of-arrays executors are
    byte-identical to the object router on every workload — stats,
    queue counters, traces, memory images, fault stats, histograms."""
    prints = {}
    for core in ("object", "array", "batched"):
        monkeypatch.setenv("REPRO_ROUTER_CORE", core)
        prints[core] = fingerprint(build(strict=False), cycles)
    for core in ("array", "batched"):
        for key in prints["object"]:
            assert prints[core][key] == prints["object"][key], (
                f"router_core={core}: {key} diverged from object"
            )


def test_batched_core_strict_kernel_matches(monkeypatch):
    """Cross-kernel x cross-core pin: the batched stepper under the
    strict tick-everything kernel equals the object router under the
    activity kernel, on the hardest workload (faults + CDC + VCs)."""
    monkeypatch.setenv("REPRO_ROUTER_CORE", "object")
    reference = fingerprint(
        build_faulted_adaptive_gals_soc(strict=False), 5000
    )
    monkeypatch.setenv("REPRO_ROUTER_CORE", "batched")
    strict_batched = fingerprint(
        build_faulted_adaptive_gals_soc(strict=True), 5000
    )
    for key in reference:
        assert strict_batched[key] == reference[key], f"{key} diverged"


def test_activity_kernel_completes_all_traffic():
    soc = build_mixed_soc(strict=False)
    soc.run_to_completion()
    assert all(m.finished() for m in soc.masters.values())
    # Once drained (and past a retire sweep) the whole SoC leaves the
    # schedule: quiescent cycles cost no component ticks at all.
    soc.run(16)
    assert soc.sim.active_count == 0
    assert len(soc.sim.components) > 0


def test_gals_soc_drains_and_retires():
    """Serialized links, CDC synchronizers and domain-gated components
    all honour the wake protocol: traffic completes and the quiescent
    GALS SoC leaves the schedule entirely."""
    soc = build_gals_soc(strict=False)
    soc.run_to_completion(max_cycles=400_000)
    assert all(m.finished() for m in soc.masters.values())
    assert soc.fabric.physical_links  # the phys path was actually built
    assert all(link.in_flight == 0 for link in soc.fabric.physical_links)
    soc.run(16)
    assert soc.sim.active_count == 0


def test_vc_gals_soc_drains_and_retires():
    """VC fabrics obey the wake protocol too: per-VC router state,
    VC-multiplexed links and their credit counters all go quiet, and the
    drained SoC leaves the schedule (active_count == 0)."""
    soc = build_vc_gals_soc(strict=False)
    soc.run_to_completion(max_cycles=400_000)
    assert all(m.finished() for m in soc.masters.values())
    assert soc.fabric.physical_links
    assert all(link.in_flight == 0 for link in soc.fabric.physical_links)
    for link in soc.fabric.physical_links:
        for credit in link.credits:
            assert credit.available == credit.capacity
    soc.run(16)
    assert soc.sim.active_count == 0


def test_adaptive_soc_drains_and_retires():
    """Adaptive fabrics obey the wake protocol: congestion-scored VC
    allocation, escape-network fallbacks and the ejection resequencing
    buffers all go quiet, and the drained SoC leaves the schedule."""
    soc = build_adaptive_gals_soc(strict=False)
    soc.run_to_completion(max_cycles=400_000)
    assert all(m.finished() for m in soc.masters.values())
    assert soc.ordering_violations() == 0
    for plane in soc.fabric._planes:
        for eport in plane.ejection_ports.values():
            assert eport.reorder_occupancy == 0
    soc.run(16)
    assert soc.sim.active_count == 0


def test_strict_env_flag(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_STRICT", "1")
    assert Simulator().strict is True
    monkeypatch.setenv("REPRO_SIM_STRICT", "0")
    assert Simulator().strict is False
    monkeypatch.delenv("REPRO_SIM_STRICT")
    assert Simulator().strict is False
