"""Unit + property tests for address decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.address_map import AddressMap, AddressRange, DecodeError


def small_map():
    m = AddressMap()
    m.add_range(0x0000, 0x1000, slv_addr=0, name="rom")
    m.add_range(0x2000, 0x2000, slv_addr=1, name="ram")
    m.add_range(0x8000, 0x100, slv_addr=2, name="regs")
    return m


class TestDecode:
    def test_decode_start_and_end(self):
        m = small_map()
        assert m.decode(0x0000) == (0, 0)
        assert m.decode(0x0FFF) == (0, 0xFFF)
        assert m.decode(0x2000) == (1, 0)
        assert m.decode(0x3FFF) == (1, 0x1FFF)

    def test_hole_raises(self):
        with pytest.raises(DecodeError):
            small_map().decode(0x1000)
        with pytest.raises(DecodeError):
            small_map().decode(0x7FFF)

    def test_above_everything_raises(self):
        with pytest.raises(DecodeError):
            small_map().decode(0x9000)

    def test_lookup_returns_range(self):
        r = small_map().lookup(0x2004)
        assert r is not None and r.name == "ram"
        assert small_map().lookup(0x1234) is None


class TestSpanDecode:
    def test_span_inside_range(self):
        assert small_map().decode_span(0x2000, 64) == (1, 0)

    def test_span_straddling_raises(self):
        with pytest.raises(DecodeError):
            small_map().decode_span(0x0FFC, 8)

    def test_span_exact_fit(self):
        assert small_map().decode_span(0x8000, 0x100) == (2, 0)


class TestConstruction:
    def test_overlap_rejected(self):
        m = small_map()
        with pytest.raises(ValueError):
            m.add_range(0x2800, 0x100, slv_addr=5)

    def test_overlap_rejected_every_direction(self):
        """The bisect-neighbour check catches all overlap geometries:
        exact alias, strict containment, straddling both edges."""
        m = small_map()
        for base, size in [
            (0x2000, 0x2000),  # exact alias of ram
            (0x2100, 0x10),    # contained inside ram
            (0x1F00, 0x200),   # straddles ram's start
            (0x3F00, 0x200),   # straddles ram's end
            (0x0000, 0x10000), # swallows everything
        ]:
            with pytest.raises(ValueError):
                m.add_range(base, size, slv_addr=9)
        assert len(m) == 3  # nothing was inserted by the failed adds

    def test_adjacent_ok(self):
        m = small_map()
        m.add_range(0x1000, 0x1000, slv_addr=3)
        assert m.decode(0x1000) == (3, 0)

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(base=-1, size=4, slv_addr=0)
        with pytest.raises(ValueError):
            AddressRange(base=0, size=0, slv_addr=0)
        with pytest.raises(ValueError):
            AddressRange(base=0, size=4, slv_addr=-1)

    def test_targets_listing(self):
        assert small_map().targets() == [0, 1, 2]
        assert len(small_map()) == 3

    def test_range_for_target(self):
        ranges = small_map().range_for_target(1)
        assert len(ranges) == 1 and ranges[0].name == "ram"


@given(
    bases=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=8, unique=True
    ),
    probe=st.integers(min_value=0, max_value=60 * 0x100),
)
def test_property_decode_agrees_with_linear_scan(bases, probe):
    """bisect-based decode matches a brute-force scan."""
    m = AddressMap()
    ranges = []
    for i, block in enumerate(sorted(bases)):
        r = m.add_range(block * 0x100, 0x80, slv_addr=i)
        ranges.append(r)
    hit = next((r for r in ranges if r.contains(probe)), None)
    if hit is None:
        with pytest.raises(DecodeError):
            m.decode(probe)
    else:
        assert m.decode(probe) == (hit.slv_addr, probe - hit.base)
