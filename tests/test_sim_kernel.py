"""Unit tests for the simulation kernel."""

import pytest

from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator


class Ticker(Component):
    def __init__(self, name):
        super().__init__(name)
        self.ticks = []
        self.finished = False

    def tick(self, cycle):
        self.ticks.append(cycle)

    def finish(self):
        self.finished = True


class Producer(Component):
    def __init__(self, name, queue, count):
        super().__init__(name)
        self.queue = queue
        self.count = count

    def tick(self, cycle):
        if self.count and self.queue.can_push():
            self.queue.push(cycle)
            self.count -= 1


class Consumer(Component):
    def __init__(self, name, queue):
        super().__init__(name)
        self.queue = queue
        self.received = []

    def tick(self, cycle):
        if self.queue:
            self.received.append((cycle, self.queue.pop()))


def test_components_tick_each_cycle():
    sim = Simulator()
    t = sim.add(Ticker("t"))
    sim.run(5)
    assert t.ticks == [0, 1, 2, 3, 4]
    assert sim.cycle == 5


def test_duplicate_component_name_rejected():
    sim = Simulator()
    sim.add(Ticker("t"))
    with pytest.raises(SimulationError):
        sim.add(Ticker("t"))


def test_duplicate_queue_name_rejected():
    sim = Simulator()
    sim.new_queue("q")
    with pytest.raises(SimulationError):
        sim.new_queue("q")


def test_queue_hop_costs_one_cycle():
    """An item pushed at cycle N is consumable at cycle N+1."""
    sim = Simulator()
    q = sim.new_queue("q", capacity=4)
    sim.add(Producer("p", q, count=3))
    c = sim.add(Consumer("c", q))
    sim.run(6)
    # produced at 0,1,2 -> consumed at 1,2,3
    assert [(rc, pc) for rc, pc in c.received] == [(1, 0), (2, 1), (3, 2)]


def test_consumer_order_independent_of_registration():
    """Registering the consumer before the producer gives identical
    results — the staged queue decouples tick order."""
    results = []
    for consumer_first in (True, False):
        sim = Simulator()
        q = sim.new_queue("q", capacity=4)
        p = Producer("p", q, count=3)
        c = Consumer("c", q)
        for comp in ([c, p] if consumer_first else [p, c]):
            sim.add(comp)
        sim.run(6)
        results.append(c.received)
    assert results[0] == results[1]


def test_run_until_predicate():
    sim = Simulator()
    t = sim.add(Ticker("t"))
    sim.run_until(lambda: len(t.ticks) >= 10, max_cycles=100)
    assert len(t.ticks) >= 10


def test_run_until_timeout_raises():
    sim = Simulator()
    sim.add(Ticker("t"))
    with pytest.raises(SimulationError):
        sim.run_until(lambda: False, max_cycles=10)


def test_finish_hook_runs_once():
    sim = Simulator()
    t = sim.add(Ticker("t"))
    sim.finish()
    sim.finish()
    assert t.finished


def test_component_lookup_by_name():
    sim = Simulator()
    t = sim.add(Ticker("abc"))
    assert sim.component("abc") is t


def test_unbound_component_has_no_simulator():
    t = Ticker("lonely")
    with pytest.raises(RuntimeError):
        __ = t.simulator


def test_component_cannot_rebind():
    t = Ticker("t")
    Simulator().add(t)
    with pytest.raises(RuntimeError):
        Simulator().add(t)


class SleepyConsumer(Component):
    """Idle-protocol consumer: sleeps whenever its queue is empty."""

    def __init__(self, name, queue):
        super().__init__(name)
        self.queue = queue
        queue.wake_on_push(self)
        self.ticks = []
        self.received = []

    def is_idle(self):
        return not self.queue

    def tick(self, cycle):
        self.ticks.append(cycle)
        if self.queue:
            self.received.append(self.queue.pop())


def test_run_until_never_overshoots_max_cycles():
    """With check_every > 1 the kernel must clamp the final stretch."""
    sim = Simulator()
    sim.add(Ticker("t"))
    with pytest.raises(SimulationError):
        sim.run_until(lambda: False, max_cycles=25, check_every=10)
    assert sim.cycle == 25


def test_run_until_check_every_still_satisfies_predicate():
    sim = Simulator()
    t = sim.add(Ticker("t"))
    sim.run_until(lambda: len(t.ticks) >= 5, max_cycles=100, check_every=7)
    assert len(t.ticks) >= 5


def test_idle_component_is_skipped_and_woken():
    sim = Simulator()
    q = sim.new_queue("q", capacity=4)
    c = sim.add(SleepyConsumer("c", q))
    sim.run(40)  # queue stays empty: consumer retires after a sweep
    ticks_while_idle = len(c.ticks)
    assert ticks_while_idle < 40
    sim.run(20)
    assert len(c.ticks) == ticks_while_idle  # fully asleep now
    q.push("item")
    sim.run(3)  # commit happens at the end of the push cycle
    assert c.received == ["item"]
    assert len(c.ticks) > ticks_while_idle


def test_strict_mode_never_skips():
    sim = Simulator(strict=True)
    q = sim.new_queue("q", capacity=4)
    c = sim.add(SleepyConsumer("c", q))
    sim.run(40)
    assert len(c.ticks) == 40


def test_active_count_drops_when_idle():
    sim = Simulator()
    q = sim.new_queue("q", capacity=4)
    sim.add(SleepyConsumer("c", q))
    always_on = sim.add(Ticker("t"))
    sim.run(20)
    assert sim.active_count == 1  # only the default always-on Ticker
    assert len(always_on.ticks) == 20


def test_component_added_mid_run_is_scheduled():
    sim = Simulator()
    sim.run(5)
    t = sim.add(Ticker("late"))
    sim.run(3)
    assert t.ticks == [5, 6, 7]
