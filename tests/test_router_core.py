"""Struct-of-arrays router core (PR 7): packing round-trips and flips.

The dense executors (`array`, `batched`) freeze a router's wormhole
state into flat parallel arrays; the object router stays the reference.
Two properties make that safe to do at *any* moment, not just at build:

- pack/unpack is lossless: building an :class:`ArrayCore` from a live
  mid-wormhole router and syncing it back leaves every piece of object
  state byte-identical, and re-packing yields the same canonical
  fingerprint (``state_fingerprint``);
- executors can be flipped mid-run: attaching/detaching cores at
  arbitrary cycle boundaries — across lock ownership, fault epochs and
  ejection resequencing — ends in exactly the run a single executor
  would have produced (the full-SoC fingerprint from the determinism
  suite).

The cross-core byte-identity matrix itself lives in
``test_kernel_determinism.py``; this file owns the state-migration
surface.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.transaction as txn_mod
import repro.transport.flit as flit_mod
from repro.core.packet import NocPacket, PacketKind
from repro.core.transaction import Opcode
from repro.sim.kernel import Simulator
from repro.transport import topology as topo
from repro.transport.network import Network
from repro.transport.router_core import ArrayCore, resolve_router_core
from test_kernel_determinism import (
    build_faulted_adaptive_gals_soc,
    build_lock_soc,
    fingerprint,
)


@pytest.fixture(autouse=True)
def _fresh_global_ids():
    txn_mod._txn_ids = itertools.count()
    flit_mod._flit_packet_ids = itertools.count()
    yield


def _request(dest, src, beats=1, store=False):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=Opcode.STORE if store else Opcode.LOAD,
        slv_addr=dest,
        mst_addr=src,
        tag=0,
        beats=beats,
        payload=[0] * beats if store else None,
        priority=0,
        txn_id=-1,
    )


def _object_state(router):
    """Everything the dense layout packs, as one comparable snapshot."""

    def fid(flit):
        return None if flit is None else flit.route_fields()

    return {
        "alloc": dict(router._input_alloc),
        "head": {k: fid(f) for k, f in router._input_head.items()},
        "age": dict(router._input_age),
        "fail": {
            k: None if v is None else (v[0], fid(v[1]))
            for k, v in router._alloc_fail.items()
        },
        "owner": dict(router._output_owner),
        "locks": dict(router._output_lock),
        "inputs": {
            k: [fid(f) for f in q._committed]
            for k, q in router._sorted_inputs
        },
    }


# One entry per fabric shape: (topology factory, Network kwargs).  The
# mesh runs the single-VC switch (`_tick_single`); the rest run the
# VC pipeline under DOR/dateline and adaptive/escape routing.
FABRICS = [
    ("mesh-1vc", lambda: topo.mesh(3, 3), {}),
    ("star-1vc", lambda: topo.star(4), {}),
    (
        "torus-dor-2vc",
        lambda: topo.torus(3, 3),
        {"routing": "dor", "vcs": 2, "vc_policy": "dateline"},
    ),
    ("ring-adaptive-3vc", lambda: topo.ring(4), {"routing": "adaptive", "vcs": 3}),
    (
        "torus-adaptive-4vc",
        lambda: topo.torus(4, 4),
        {"routing": "adaptive", "vcs": 4},
    ),
]


@settings(max_examples=20, deadline=None)
@given(
    fabric=st.sampled_from(FABRICS),
    seed=st.integers(0, 2**16),
    n_packets=st.integers(1, 14),
    cycles=st.integers(1, 80),
)
def test_pack_unpack_round_trip(fabric, seed, n_packets, cycles):
    """Packing a live router and syncing back is lossless at any cycle."""
    _label, make_topo, kwargs = fabric
    flit_mod._flit_packet_ids = itertools.count()
    sim = Simulator()
    net = Network(sim, make_topo(), **kwargs)
    rng = random.Random(seed)
    endpoints = net.topology.endpoints
    for _ in range(n_packets):
        src, dest = rng.sample(endpoints, 2)
        store = rng.random() < 0.5
        if net.injection_ports[src].packet_queue.can_push():
            net.inject(src, _request(dest, src, beats=rng.randint(1, 8),
                                     store=store))
        sim.run(rng.randint(0, 4))
    # Stop mid-flight: wormholes held open, allocations live, alloc-fail
    # caches warm — the adversarial moment to freeze the layout.
    sim.run(cycles)
    for router in net.routers.values():
        before = _object_state(router)
        core = ArrayCore(router)
        packed = core.state_fingerprint()
        core.sync_to_router()
        assert _object_state(router) == before, (
            f"{router.name}: pack+sync mutated object state"
        )
        repacked = ArrayCore(router)
        assert repacked.state_fingerprint() == packed, (
            f"{router.name}: fingerprint drifted across a round-trip"
        )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16), cycles=st.integers(10, 120))
def test_attach_detach_mid_run_preserves_delivery(seed, cycles):
    """attach -> run -> detach -> run delivers exactly the object run."""
    results = []
    for flip in (False, True):
        flit_mod._flit_packet_ids = itertools.count()
        sim = Simulator()
        net = Network(sim, topo.ring(4), routing="adaptive", vcs=3)
        rng = random.Random(seed)
        endpoints = net.topology.endpoints
        for _ in range(10):
            src, dest = rng.sample(endpoints, 2)
            if net.injection_ports[src].packet_queue.can_push():
                net.inject(src, _request(dest, src, beats=rng.randint(1, 6),
                                         store=True))
        sim.run(cycles)
        if flip:
            cores = [ArrayCore(r) for r in net.routers.values()]
            for core in cores:
                core.attach()
        sim.run(cycles)
        if flip:
            for core in cores:
                core.detach()
        sim.run(400)
        results.append({
            name: (q.total_pushed, q.total_popped, q.high_watermark)
            for name, q in sim._queue_names.items()
        })
    assert results[0] == results[1]


def _flip_all_routers(soc):
    """Toggle every router between the object and array executors."""
    for plane in soc.fabric._planes:
        for router in plane.routers.values():
            core = router._array_core
            if core is not None:
                core.detach()
            else:
                ArrayCore(router).attach()


@pytest.mark.parametrize(
    "build, cycles",
    [
        (build_lock_soc, 3000),
        (build_faulted_adaptive_gals_soc, 5000),
    ],
    ids=["legacy-lock", "faulted-adaptive-gals"],
)
def test_mid_run_core_flips_match_pure_runs(build, cycles, monkeypatch):
    """Flip object<->array four times mid-matrix, across lock ownership
    and fault epochs (the 0.09/0.13 boundaries straddle the faulted
    workload's down-at-400/heal-at-900 window), and land on the exact
    fingerprint of a never-flipped run."""
    monkeypatch.setenv("REPRO_ROUTER_CORE", "object")
    reference = fingerprint(build(strict=False), cycles)

    monkeypatch.setenv("REPRO_ROUTER_CORE", "object")
    soc = build(strict=False)
    boundaries = [int(cycles * f) for f in (0.09, 0.13, 0.5, 0.8)]
    previous = 0
    for boundary in boundaries:
        soc.run(boundary - previous)
        previous = boundary
        _flip_all_routers(soc)
    flipped = fingerprint(soc, cycles - previous)
    for key in reference:
        assert flipped[key] == reference[key], (
            f"{key} diverged after mid-run core flips"
        )


def test_resolve_router_core_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_ROUTER_CORE", raising=False)
    assert resolve_router_core() == "batched"
    assert resolve_router_core("object") == "object"
    monkeypatch.setenv("REPRO_ROUTER_CORE", "array")
    assert resolve_router_core() == "array"
    # explicit argument wins over the environment
    assert resolve_router_core("batched") == "batched"
    with pytest.raises(ValueError):
        resolve_router_core("simd")
    monkeypatch.setenv("REPRO_ROUTER_CORE", "turbo")
    with pytest.raises(ValueError):
        resolve_router_core()
