"""Unit tests for memory targets and the byte store."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.transaction import ResponseStatus
from repro.ip.slaves import ByteStore, MemoryDevice
from repro.protocols.base import SlaveRequest, SlaveSocket
from repro.sim.kernel import Simulator


class TestByteStore:
    def test_roundtrip(self):
        store = ByteStore()
        store.write_beat(0x10, 0xDEADBEEF, 4)
        assert store.read_beat(0x10, 4) == 0xDEADBEEF

    def test_unwritten_reads_zero(self):
        assert ByteStore().read_beat(0x0, 8) == 0

    def test_mixed_widths_little_endian(self):
        store = ByteStore()
        store.write_beat(0x0, 0x11223344, 4)
        assert store.read_beat(0x0, 1) == 0x44
        assert store.read_beat(0x2, 2) == 0x1122
        store.write_beat(0x1, 0xFF, 1)
        assert store.read_beat(0x0, 4) == 0x1122FF44

    @given(
        offset=st.integers(min_value=0, max_value=256),
        value=st.integers(min_value=0, max_value=(1 << 64) - 1),
        width=st.sampled_from([1, 2, 4, 8]),
    )
    def test_property_roundtrip_any_width(self, offset, value, width):
        store = ByteStore()
        store.write_beat(offset, value & ((1 << (8 * width)) - 1), width)
        assert store.read_beat(offset, width) == value & (
            (1 << (8 * width)) - 1
        )


def make_memory(sim, **kwargs):
    socket = SlaveSocket(sim, "mem.sock")
    memory = sim.add(MemoryDevice("mem", socket, size=0x1000, **kwargs))
    return memory, socket


def write_req(offset, data, token=0):
    return SlaveRequest(
        read=False, offset=offset, beats=len(data), beat_bytes=4,
        addresses=[offset + 4 * i for i in range(len(data))],
        data=data, token=token,
    )


def read_req(offset, beats=1, token=1):
    return SlaveRequest(
        read=True, offset=offset, beats=beats, beat_bytes=4,
        addresses=[offset + 4 * i for i in range(beats)], token=token,
    )


class TestMemoryDevice:
    def test_write_then_read(self):
        sim = Simulator()
        memory, socket = make_memory(sim)
        socket.requests.push(write_req(0x40, [5, 6], token=0))
        socket.requests.push(read_req(0x40, beats=2, token=1))
        sim.run_until(lambda: len(socket.responses) >= 2, max_cycles=100)
        first, second = socket.responses.drain()
        assert first.token == 0 and first.status is ResponseStatus.OKAY
        assert second.data == [5, 6]

    def test_latency_respected(self):
        sim = Simulator()
        memory, socket = make_memory(sim, read_latency=20)
        socket.requests.push(read_req(0x0))
        sim.run_until(lambda: bool(socket.responses), max_cycles=100)
        assert sim.cycle >= 20

    def test_out_of_bounds_is_slverr(self):
        sim = Simulator()
        memory, socket = make_memory(sim)
        socket.requests.push(read_req(0x1000))
        sim.run_until(lambda: bool(socket.responses), max_cycles=100)
        assert socket.responses.pop().status is ResponseStatus.SLVERR
        assert memory.errors_served == 1

    def test_error_range_is_slverr(self):
        sim = Simulator()
        memory, socket = make_memory(sim, error_ranges=[(0x80, 0x10)])
        socket.requests.push(read_req(0x84))
        sim.run_until(lambda: bool(socket.responses), max_cycles=100)
        assert socket.responses.pop().status is ResponseStatus.SLVERR

    def test_per_beat_cycles(self):
        def latency(per_beat):
            sim = Simulator()
            __, socket = make_memory(sim, per_beat_cycles=per_beat)
            socket.requests.push(read_req(0x0, beats=8))
            sim.run_until(lambda: bool(socket.responses), max_cycles=200)
            return sim.cycle
        assert latency(2) > latency(0)

    def test_idle_flag(self):
        sim = Simulator()
        memory, socket = make_memory(sim)
        assert memory.idle()
        socket.requests.push(read_req(0x0))
        sim.run(2)
        assert not memory.idle()
        sim.run_until(lambda: bool(socket.responses), max_cycles=100)
        sim.run(1)
        assert memory.idle()

    def test_counters(self):
        sim = Simulator()
        memory, socket = make_memory(sim)
        socket.requests.push(write_req(0x0, [1]))
        socket.requests.push(read_req(0x0))
        sim.run_until(lambda: len(socket.responses) >= 2, max_cycles=100)
        assert memory.writes_served == 1
        assert memory.reads_served == 1
        assert memory.stored_bytes == 4
