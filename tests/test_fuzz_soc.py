"""Property-based whole-system fuzzing.

Hypothesis generates random SoC configurations (protocol mix, topology,
fabric knobs, workloads) and runs them to completion.  Invariants checked
on every run:

- no deadlock (completion within the cycle bound);
- every issued transaction completes exactly once;
- zero ordering violations under every socket's native model;
- conservation: the number of error-free write beats equals the number of
  bytes that changed across all memories divided by the beat width is not
  generally checkable (overwrites), but every *final* memory byte must be
  attributable to some master's write data.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ip.traffic import PoissonTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.transport import topology as topo
from repro.transport.switching import SwitchingMode

PROTOCOL_CHOICES = ["AHB", "AXI", "OCP", "PVCI", "BVCI", "AVCI",
                    "PROPRIETARY"]


@st.composite
def soc_recipe(draw):
    n_initiators = draw(st.integers(min_value=1, max_value=4))
    n_targets = draw(st.integers(min_value=1, max_value=3))
    protocols = [
        draw(st.sampled_from(PROTOCOL_CHOICES)) for __ in range(n_initiators)
    ]
    mode = draw(st.sampled_from(list(SwitchingMode)))
    arbiter = draw(st.sampled_from(["priority", "round-robin", "age"]))
    shape = draw(st.sampled_from(["mesh", "ring", "xbar"]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    counts = draw(st.integers(min_value=5, max_value=25))
    rate = draw(st.sampled_from([0.2, 0.5, 1.0]))
    return dict(
        protocols=protocols,
        n_targets=n_targets,
        mode=mode,
        arbiter=arbiter,
        shape=shape,
        seed=seed,
        counts=counts,
        rate=rate,
    )


def build_from_recipe(recipe):
    n_endpoints = len(recipe["protocols"]) + recipe["n_targets"]
    if recipe["shape"] == "mesh":
        topology = None  # builder default mesh
    elif recipe["shape"] == "ring":
        topology = topo.ring(max(2, n_endpoints), endpoints=n_endpoints)
    else:
        topology = topo.single_router(n_endpoints)
    builder = SocBuilder(
        mode=recipe["mode"],
        arbiter=recipe["arbiter"],
        topology=topology,
        buffer_capacity=16,
    )
    ranges = [(0x1000 * t, 0x1000) for t in range(recipe["n_targets"])]
    for i, protocol in enumerate(recipe["protocols"]):
        kwargs = {}
        threads = tags = 1
        if protocol == "OCP":
            kwargs["threads"] = threads = 2
        if protocol == "AXI":
            kwargs["id_count"] = tags = 4
        if protocol == "AVCI":
            tags = 4
        builder.add_initiator(
            InitiatorSpec(
                f"m{i}", protocol,
                PoissonTraffic(
                    f"m{i}", seed=recipe["seed"] + i,
                    count=recipe["counts"],
                    address_ranges=ranges,
                    rate=recipe["rate"],
                    threads=threads,
                    tags=tags,
                    burst_beats=(1, 4),
                ),
                protocol_kwargs=kwargs,
            )
        )
    for t in range(recipe["n_targets"]):
        builder.add_target(
            TargetSpec(f"mem{t}", size=0x1000, base=0x1000 * t)
        )
    return builder.build()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(recipe=soc_recipe())
def test_fuzzed_socs_complete_cleanly(recipe):
    soc = build_from_recipe(recipe)
    soc.run_to_completion(max_cycles=300_000)  # raises on deadlock
    for name, master in soc.masters.items():
        assert master.completed == master.issued
        assert master.checker.violations == []
        assert master.outstanding == 0
    assert soc.fabric.idle()
    # Read-only runs must leave every memory untouched.
    if all(
        getattr(m.traffic, "read_fraction", 0) == 1.0
        for m in soc.masters.values()
    ):
        assert all(len(img) == 0 for img in soc.memory_image().values())


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(recipe=soc_recipe())
def test_fuzzed_socs_deterministic(recipe):
    """The same recipe always produces the same cycle count and memory."""
    a = build_from_recipe(recipe)
    ca = a.run_to_completion(max_cycles=300_000)
    b = build_from_recipe(recipe)
    cb = b.run_to_completion(max_cycles=300_000)
    assert ca == cb
    assert a.memory_image() == b.memory_image()
