"""Unit + property tests for transaction primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.transaction import (
    BurstType,
    Opcode,
    Response,
    ResponseStatus,
    Transaction,
    make_read,
    make_write,
    split_burst,
)


class TestOpcode:
    def test_classification(self):
        assert Opcode.LOAD.is_read and not Opcode.LOAD.is_write
        assert Opcode.STORE.is_write and not Opcode.STORE.is_read
        assert Opcode.READEX.is_read
        assert Opcode.STORE_COND_LOCKED.is_write

    def test_posted_store_has_no_response(self):
        assert not Opcode.STORE_POSTED.expects_response
        for opcode in Opcode:
            if opcode is not Opcode.STORE_POSTED:
                assert opcode.expects_response

    def test_locking_family(self):
        locking = {o for o in Opcode if o.is_locking}
        assert locking == {
            Opcode.READEX,
            Opcode.STORE_COND_LOCKED,
            Opcode.LOCK,
            Opcode.UNLOCK,
        }


class TestBurst:
    def test_incr_addresses(self):
        assert BurstType.INCR.addresses(0x100, 4, 4) == [
            0x100,
            0x104,
            0x108,
            0x10C,
        ]

    def test_wrap_addresses_wrap_at_boundary(self):
        # 4-beat x 4-byte WRAP starting mid-block wraps to block start.
        assert BurstType.WRAP.addresses(0x108, 4, 4) == [
            0x108,
            0x10C,
            0x100,
            0x104,
        ]

    def test_fixed_addresses_repeat(self):
        assert BurstType.FIXED.addresses(0x20, 3, 4) == [0x20, 0x20, 0x20]

    def test_single_requires_one_beat(self):
        with pytest.raises(ValueError):
            BurstType.SINGLE.addresses(0, 2, 4)

    def test_wrap_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BurstType.WRAP.addresses(0, 3, 4)

    @given(
        start=st.integers(min_value=0, max_value=1 << 20),
        log_beats=st.integers(min_value=0, max_value=4),
        beat_bytes=st.sampled_from([1, 2, 4, 8]),
    )
    def test_wrap_addresses_stay_in_block(self, start, log_beats, beat_bytes):
        beats = 1 << log_beats
        start = (start // beat_bytes) * beat_bytes
        total = beats * beat_bytes
        addresses = BurstType.WRAP.addresses(start, beats, beat_bytes)
        block = (start // total) * total
        assert len(addresses) == beats
        assert len(set(addresses)) == beats  # all distinct
        assert all(block <= a < block + total for a in addresses)

    @given(
        start=st.integers(min_value=0, max_value=1 << 20),
        beats=st.integers(min_value=1, max_value=64),
        beat_bytes=st.sampled_from([1, 2, 4, 8]),
    )
    def test_incr_addresses_contiguous(self, start, beats, beat_bytes):
        addresses = BurstType.INCR.addresses(start, beats, beat_bytes)
        assert addresses[0] == start
        assert all(
            b - a == beat_bytes for a, b in zip(addresses, addresses[1:])
        )


class TestTransaction:
    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            Transaction(opcode=Opcode.STORE, address=0, beats=2)

    def test_write_data_length_must_match(self):
        with pytest.raises(ValueError):
            Transaction(opcode=Opcode.STORE, address=0, beats=2, data=[1])

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Transaction(opcode=Opcode.LOAD, address=-4)

    def test_bad_beat_width_rejected(self):
        with pytest.raises(ValueError):
            Transaction(opcode=Opcode.LOAD, address=0, beat_bytes=3)

    def test_excl_incompatible_with_locking(self):
        with pytest.raises(ValueError):
            Transaction(opcode=Opcode.READEX, address=0, excl=True)

    def test_single_beat_normalizes_burst(self):
        txn = Transaction(
            opcode=Opcode.LOAD, address=0, beats=1, burst=BurstType.INCR
        )
        assert txn.burst is BurstType.SINGLE

    def test_txn_ids_unique(self):
        a = make_read(0)
        b = make_read(0)
        assert a.txn_id != b.txn_id

    def test_total_bytes(self):
        txn = make_read(0, beats=4, beat_bytes=8)
        assert txn.total_bytes == 32

    def test_describe_mentions_opcode_and_address(self):
        text = make_read(0x1000, master="cpu").describe()
        assert "LOAD" in text and "0x00001000" in text and "cpu" in text


class TestResponse:
    def test_read_okay_requires_data(self):
        with pytest.raises(ValueError):
            Response(txn_id=1, opcode=Opcode.LOAD)

    def test_error_response_needs_no_data(self):
        r = Response(txn_id=1, opcode=Opcode.LOAD, status=ResponseStatus.SLVERR)
        assert not r.ok

    def test_exokay_is_not_error(self):
        r = Response(
            txn_id=1, opcode=Opcode.STORE, status=ResponseStatus.EXOKAY
        )
        assert r.ok


class TestSplitBurst:
    def test_split_exact(self):
        txn = make_write(0x0, list(range(8)))
        chunks = split_burst(txn, 4)
        assert chunks == [(0x0, [0, 1, 2, 3]), (0x10, [4, 5, 6, 7])]

    def test_split_remainder(self):
        txn = make_write(0x0, list(range(5)))
        chunks = split_burst(txn, 4)
        assert len(chunks) == 2
        assert chunks[1] == (0x10, [4])

    def test_split_read_has_empty_data(self):
        txn = make_read(0x0, beats=6)
        chunks = split_burst(txn, 4)
        assert [c[1] for c in chunks] == [[], []]

    def test_bad_max_beats(self):
        with pytest.raises(ValueError):
            split_burst(make_read(0), 0)

    @given(
        beats=st.integers(min_value=1, max_value=64),
        max_beats=st.integers(min_value=1, max_value=16),
    )
    def test_split_preserves_data(self, beats, max_beats):
        txn = make_write(0, list(range(beats)))
        chunks = split_burst(txn, max_beats)
        reassembled = [v for __, data in chunks for v in data]
        assert reassembled == list(range(beats))
        assert all(len(d) <= max_beats for __, d in chunks)
