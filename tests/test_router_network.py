"""Router and network integration tests (transport layer behaviour)."""

import pytest

from repro.core.packet import NocPacket, PacketKind
from repro.core.transaction import Opcode
from repro.sim.kernel import Simulator
from repro.transport import topology as topo
from repro.transport.network import Fabric, Network
from repro.transport.switching import SwitchingMode


def request(slv, mst, opcode=Opcode.LOAD, beats=1, priority=0, txn_id=-1, payload=None):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=opcode,
        slv_addr=slv,
        mst_addr=mst,
        tag=0,
        beats=beats,
        payload=payload,
        priority=priority,
        txn_id=txn_id,
    )


def drain(net, endpoint, sim, count, max_cycles=5000):
    got = []
    def pump():
        q = net.ejected(endpoint)
        while q:
            got.append(q.pop())
        return len(got) >= count
    sim.run_until(pump, max_cycles=max_cycles)
    return got


class TestDelivery:
    @pytest.mark.parametrize("mode", list(SwitchingMode))
    def test_point_to_point(self, mode):
        sim = Simulator()
        net = Network(sim, topo.mesh(3, 3), mode=mode, buffer_capacity=16)
        net.inject(0, request(8, 0, txn_id=1))
        got = drain(net, 8, sim, 1)
        assert got[0].txn_id == 1

    @pytest.mark.parametrize(
        "topology",
        [topo.ring(4), topo.star(4, endpoints=4), topo.single_router(4),
         topo.tree(2, 2, endpoints=4), topo.torus(3, 3)],
        ids=lambda t: t.name,
    )
    def test_all_pairs_all_topologies(self, topology):
        sim = Simulator()
        net = Network(sim, topology)
        eps = topology.endpoints
        expected = 0
        for src in eps:
            for dst in eps:
                if src == dst:
                    continue
                sim.run_until(lambda: net.can_inject(src), max_cycles=1000)
                net.inject(src, request(dst, src, txn_id=src * 100 + dst))
                expected += 1
        received = []
        def pump():
            for ep in eps:
                q = net.ejected(ep)
                while q:
                    received.append(q.pop())
            return len(received) >= expected
        sim.run_until(pump, max_cycles=20_000)
        assert len(received) == expected

    def test_same_pair_fifo_order(self):
        """Packets between one (src, dst) pair never reorder — the
        guarantee NIU response matching relies on."""
        sim = Simulator()
        net = Network(sim, topo.mesh(3, 3))
        sent = 0
        received = []
        def pump():
            nonlocal sent
            if sent < 20 and net.can_inject(0):
                net.inject(0, request(8, 0, txn_id=sent))
                sent += 1
            q = net.ejected(8)
            while q:
                received.append(q.pop().txn_id)
            return len(received) >= 20
        sim.run_until(pump, max_cycles=10_000)
        assert received == list(range(20))

    def test_multi_flit_payload_survives(self):
        sim = Simulator()
        net = Network(sim, topo.mesh(2, 2))
        payload = list(range(16))
        net.inject(
            0, request(3, 0, opcode=Opcode.STORE, beats=16, payload=payload)
        )
        got = drain(net, 3, sim, 1)
        assert got[0].payload == payload

    def test_xy_routing_delivers(self):
        sim = Simulator()
        net = Network(sim, topo.mesh(3, 3), routing="xy")
        net.inject(0, request(8, 0, txn_id=5))
        got = drain(net, 8, sim, 1)
        assert got[0].txn_id == 5


class TestSwitchingModeBehaviour:
    def _latency(self, mode, beats):
        sim = Simulator()
        net = Network(
            sim, topo.mesh(3, 3), mode=mode, buffer_capacity=32
        )
        net.inject(
            0,
            request(8, 0, opcode=Opcode.STORE, beats=beats,
                    payload=[0] * beats),
        )
        drain(net, 8, sim, 1)
        return sim.cycle

    def test_saf_slower_than_wormhole_for_long_packets(self):
        wormhole = self._latency(SwitchingMode.WORMHOLE, 16)
        saf = self._latency(SwitchingMode.STORE_AND_FORWARD, 16)
        assert saf > wormhole

    def test_vct_matches_wormhole_unloaded(self):
        wormhole = self._latency(SwitchingMode.WORMHOLE, 16)
        vct = self._latency(SwitchingMode.VIRTUAL_CUT_THROUGH, 16)
        assert vct == wormhole

    def test_saf_oversize_packet_rejected_at_injection(self):
        sim = Simulator()
        net = Network(
            sim,
            topo.mesh(2, 2),
            mode=SwitchingMode.STORE_AND_FORWARD,
            buffer_capacity=4,
        )
        with pytest.raises(ValueError):
            net.inject(
                0,
                request(3, 0, opcode=Opcode.STORE, beats=32,
                        payload=[0] * 32),
            )


class TestPriorityArbitration:
    def test_high_priority_wins_contended_output(self):
        """Two flows converge on one ejection port; the high-priority flow
        sees lower latency."""
        sim = Simulator()
        net = Network(sim, topo.mesh(3, 3), arbiter="priority")
        sent = {1: 0, 2: 0}
        done = {1: [], 2: []}
        inject_cycles = {}
        def pump():
            for src, prio in ((1, 0), (2, 2)):
                if sent[src] < 15 and net.can_inject(src):
                    pkt = request(
                        7, src, opcode=Opcode.STORE, beats=8,
                        payload=[0] * 8, priority=prio,
                        txn_id=src * 1000 + sent[src],
                    )
                    net.inject(src, pkt)
                    inject_cycles[pkt.txn_id] = sim.cycle
                    sent[src] += 1
            q = net.ejected(7)
            while q:
                pkt = q.pop()
                done[pkt.txn_id // 1000].append(
                    sim.cycle - inject_cycles[pkt.txn_id]
                )
            return len(done[1]) >= 15 and len(done[2]) >= 15
        sim.run_until(pump, max_cycles=20_000)
        def mean(xs):
            return sum(xs) / len(xs)
        assert mean(done[2]) < mean(done[1])


class TestLockHandling:
    def test_lock_blocks_other_masters_path(self):
        """After a LOCK packet passes, packets from other masters stall at
        the locked port until UNLOCK passes (paper §3)."""
        sim = Simulator()
        net = Network(sim, topo.single_router(3))
        net.inject(0, request(2, 0, opcode=Opcode.LOCK, txn_id=1))
        got = drain(net, 2, sim, 1)
        assert got[0].txn_id == 1
        # Other master's packet now stalls.
        net.inject(1, request(2, 1, txn_id=2))
        sim.run(50)
        assert not net.ejected(2)
        assert net.total_lock_stall_cycles() > 0
        # Holder's own packet passes.
        net.inject(0, request(2, 0, txn_id=3))
        got = drain(net, 2, sim, 1)
        assert got[0].txn_id == 3
        # UNLOCK releases; blocked packet now flows.
        net.inject(0, request(2, 0, opcode=Opcode.UNLOCK, txn_id=4))
        got = drain(net, 2, sim, 2)
        assert sorted(p.txn_id for p in got) == [2, 4]

    def test_lock_support_disableable(self):
        sim = Simulator()
        net = Network(sim, topo.single_router(3), lock_support=False)
        net.inject(0, request(2, 0, opcode=Opcode.LOCK, txn_id=1))
        drain(net, 2, sim, 1)
        net.inject(1, request(2, 1, txn_id=2))
        got = drain(net, 2, sim, 1)
        assert got[0].txn_id == 2  # no blocking without the service


class TestFabric:
    def test_planes_are_independent(self):
        sim = Simulator()
        fab = Fabric(sim, topo.mesh(2, 2))
        fab.inject_request(0, request(3, 0, txn_id=1))
        rsp = request(3, 0, txn_id=2).make_response(payload=None)
        fab.inject_response(3, rsp)
        def both():
            return bool(fab.requests(3)) and bool(fab.responses(0))
        sim.run_until(both, max_cycles=100)
        assert fab.requests(3).pop().txn_id == 1
        assert fab.responses(0).pop().txn_id == 2

    def test_idle_detection(self):
        sim = Simulator()
        fab = Fabric(sim, topo.mesh(2, 2))
        assert fab.idle()
        fab.inject_request(0, request(3, 0))
        assert not fab.idle()
        sim.run_until(lambda: bool(fab.requests(3)), max_cycles=100)
        fab.requests(3).pop()
        sim.run(10)
        assert fab.idle()

    def test_utilization_reporting(self):
        sim = Simulator()
        net = Network(sim, topo.mesh(2, 2))
        net.inject(0, request(3, 0))
        drain(net, 3, sim, 1)
        assert 0.0 < net.mean_link_utilization(sim.cycle) < 1.0
