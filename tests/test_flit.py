"""Unit tests for flit segmentation and reassembly."""

import pytest

from repro.core.packet import NocPacket, PacketFormat, PacketKind
from repro.core.transaction import Opcode
from repro.transport.flit import (
    Packetizer,
    Reassembler,
    ReassemblyError,
    flits_for_packet,
)


def read_request(beats=4):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=Opcode.LOAD,
        slv_addr=1,
        mst_addr=0,
        tag=0,
        beats=beats,
    )


def write_request(beats=4, beat_bytes=4):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=Opcode.STORE,
        slv_addr=1,
        mst_addr=0,
        tag=0,
        beats=beats,
        beat_bytes=beat_bytes,
        payload=[0] * beats,
    )


class TestFlitCount:
    def test_read_request_is_single_flit(self):
        assert flits_for_packet(read_request(beats=16), 128) == 1

    def test_write_payload_adds_flits(self):
        # 4 beats x 32 bits = 128 bits = 1 body flit
        assert flits_for_packet(write_request(beats=4), 128) == 2
        # 8 beats x 32 bits = 256 bits = 2 body flits
        assert flits_for_packet(write_request(beats=8), 128) == 3

    def test_narrow_flits_cost_more(self):
        wide = flits_for_packet(write_request(beats=8), 256, header_bits=64)
        narrow = flits_for_packet(write_request(beats=8), 64, header_bits=64)
        assert narrow > wide

    def test_header_must_fit_flit(self):
        with pytest.raises(ValueError):
            flits_for_packet(read_request(), 64, header_bits=100)

    def test_tiny_flit_rejected(self):
        with pytest.raises(ValueError):
            flits_for_packet(read_request(), 4)


class TestPacketizer:
    def test_head_and_tail_flags(self):
        flits = Packetizer(128).segment(write_request(beats=8))
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_is_both(self):
        flits = Packetizer(128).segment(read_request())
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail

    def test_only_head_carries_packet(self):
        flits = Packetizer(128).segment(write_request(beats=8))
        assert flits[0].packet is not None
        assert all(f.packet is None for f in flits[1:])

    def test_routing_fields_replicated(self):
        flits = Packetizer(128).segment(write_request(beats=8))
        assert all(f.dest == 1 and f.src == 0 for f in flits)

    def test_distinct_packet_ids(self):
        p = Packetizer(128)
        a = p.segment(read_request())
        b = p.segment(read_request())
        assert a[0].packet_id != b[0].packet_id

    def test_format_validation_applied(self):
        fmt = PacketFormat(slv_addr_bits=1, mst_addr_bits=1, tag_bits=1)
        packetizer = Packetizer(128, fmt)
        bad = NocPacket(
            kind=PacketKind.REQUEST,
            opcode=Opcode.LOAD,
            slv_addr=5,
            mst_addr=0,
            tag=0,
        )
        with pytest.raises(ValueError):
            packetizer.segment(bad)

    def test_format_header_must_fit(self):
        fmt = PacketFormat()  # 67-bit header
        with pytest.raises(ValueError):
            Packetizer(64, fmt)


class TestReassembler:
    def test_roundtrip(self):
        packet = write_request(beats=8)
        flits = Packetizer(128).segment(packet)
        r = Reassembler()
        results = [r.accept(f) for f in flits]
        assert results[:-1] == [None] * (len(flits) - 1)
        assert results[-1] is packet

    def test_body_without_head_rejected(self):
        flits = Packetizer(128).segment(write_request(beats=8))
        with pytest.raises(ReassemblyError):
            Reassembler().accept(flits[1])

    def test_head_mid_packet_rejected(self):
        p = Packetizer(128)
        a = p.segment(write_request(beats=8))
        b = p.segment(write_request(beats=8))
        r = Reassembler()
        r.accept(a[0])
        with pytest.raises(ReassemblyError):
            r.accept(b[0])

    def test_interleaved_body_rejected(self):
        p = Packetizer(128)
        a = p.segment(write_request(beats=8))
        b = p.segment(write_request(beats=8))
        r = Reassembler()
        r.accept(a[0])
        with pytest.raises(ReassemblyError):
            r.accept(b[1])

    def test_mid_packet_flag(self):
        flits = Packetizer(128).segment(write_request(beats=8))
        r = Reassembler()
        assert not r.mid_packet
        r.accept(flits[0])
        assert r.mid_packet
