"""Programmable endpoints (PR 9): DMA programs, streams, traces, registry.

Pins the workload-layer contracts: descriptor programs execute their
dependency DAGs identically on every kernel and router core, stream
credit loops actually backpressure, record→replay reproduces the
byte-identical determinism fingerprint, the scenario registry fails by
name, and the declarative TrafficSpec is observably equivalent to the
legacy constructors it unified.
"""

import types

import pytest

from repro.ip.traffic import (
    PoissonTraffic,
    TrafficSeedError,
    TrafficSpec,
    WorkloadStallError,
)
from repro.sim.fingerprint import fingerprint_soc, reset_ids
from repro.soc import FaultSchedule, InitiatorSpec, SocBuilder, TargetSpec
from repro.sweep import Checkpoint
from repro.transport import topology as topo
from repro.workloads import (
    DmaDescriptor,
    DmaEngine,
    DmaProgramError,
    StreamChannel,
    TraceFormatError,
    TraceReplay,
    TraceReplayError,
    TraceReplaySource,
    TraceWriter,
    UnknownScenarioError,
    all_to_all,
    available,
    describe,
    get,
    near_neighbor_exchange,
    register,
    stream_pair,
)


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_ids()
    yield


# --------------------------------------------------------------------- #
# scenario registry
# --------------------------------------------------------------------- #
class TestScenarioRegistry:
    def test_builtins_registered(self):
        names = available()
        assert names == tuple(sorted(names))
        for name in ("dma_chain", "stream_pipeline", "collective_allreduce"):
            assert name in names
            assert isinstance(describe(name), str) and describe(name)

    def test_unknown_scenario_named_error(self):
        with pytest.raises(UnknownScenarioError) as err:
            get("no_such_scenario")
        assert "no_such_scenario" in str(err.value)
        assert "available" in str(err.value)
        assert isinstance(err.value, LookupError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("dma_chain", get("dma_chain"))

    def test_module_contract_enforced(self):
        no_build = types.SimpleNamespace(describe=lambda: "x")
        with pytest.raises(ValueError, match="build"):
            register("broken_scenario", no_build)
        no_describe = types.SimpleNamespace(build=lambda **kw: None)
        with pytest.raises(ValueError, match="describe"):
            register("broken_scenario", no_describe)
        assert "broken_scenario" not in available()

    @pytest.mark.parametrize("name", ["dma_chain", "stream_pipeline",
                                      "collective_allreduce"])
    def test_builtin_builds_and_completes(self, name):
        soc = get(name).build(strict_kernel=False)
        soc.run_to_completion()
        assert soc.total_completed() > 0


# --------------------------------------------------------------------- #
# stream channels
# --------------------------------------------------------------------- #
class TestStreamChannel:
    def test_commit_delayed_visibility(self):
        ch = StreamChannel("ch")
        ch.put(5)
        assert ch.level(5) == 0  # put at 5 is not visible at 5
        assert ch.level(6) == 1
        assert ch.total() == 1
        assert ch.visible_at(1) == 6

    def test_initial_credit_visible_from_cycle_zero(self):
        ch = StreamChannel("credit", initial=3)
        assert ch.level(0) == 3
        with pytest.raises(ValueError, match="initial"):
            StreamChannel("bad", initial=-1)

    def test_put_wakes_waiters(self):
        woken = []
        master = types.SimpleNamespace(wake=lambda: woken.append(True))
        ch = StreamChannel("ch")
        ch.add_waiter(master)
        ch.add_waiter(master)  # idempotent
        ch.put(0)
        assert woken == [True]


# --------------------------------------------------------------------- #
# DMA program validation
# --------------------------------------------------------------------- #
class TestDmaProgramValidation:
    def test_empty_program(self):
        with pytest.raises(DmaProgramError, match="empty"):
            DmaEngine("e", [])

    def test_unknown_op(self):
        with pytest.raises(DmaProgramError, match="unknown op"):
            DmaEngine("e", [DmaDescriptor("scatter")])

    def test_after_must_reference_earlier_descriptor(self):
        with pytest.raises(DmaProgramError, match="earlier"):
            DmaEngine("e", [DmaDescriptor("read", after=(0,))])
        with pytest.raises(DmaProgramError, match="earlier"):
            DmaEngine("e", [DmaDescriptor("read"),
                            DmaDescriptor("write", after=(1,))])

    def test_compute_cannot_wait_on_channel(self):
        ch = StreamChannel("ch")
        with pytest.raises(DmaProgramError, match="compute"):
            DmaEngine("e", [DmaDescriptor("compute", delay=4, wait=ch)])

    def test_distinct_channels_sharing_a_name(self):
        with pytest.raises(DmaProgramError, match="named"):
            DmaEngine("e", [
                DmaDescriptor("read", wait=StreamChannel("tok")),
                DmaDescriptor("write", signal=StreamChannel("tok")),
            ])

    def test_on_error_knob(self):
        with pytest.raises(ValueError, match="on_error"):
            DmaEngine("e", [DmaDescriptor("read")], on_error="ignore")


# --------------------------------------------------------------------- #
# DMA engines on a fabric
# --------------------------------------------------------------------- #
def _dma_soc(engines, *, strict=False, faults=None, adaptive=False,
             targets=None, **builder_kwargs):
    """Small SoC: the given engines as AXI initiators plus one memory."""
    reset_ids()
    if adaptive:
        endpoints = len(engines) + len(targets or [1])
        builder_kwargs.setdefault(
            "topology", topo.torus(4, 4, endpoints=endpoints)
        )
        builder_kwargs.update(routing="adaptive", vcs=3, vc_policy="escape")
    builder = SocBuilder(
        name="dma_test", strict_kernel=strict, faults=faults,
        workload=dict(engines), **builder_kwargs,
    )
    for name in engines:
        builder.add_initiator(
            InitiatorSpec(name, "AXI", protocol_kwargs={"id_count": 4})
        )
    for spec in targets or [TargetSpec("mem", size=0x4000, read_latency=3,
                                       write_latency=2)]:
        builder.add_target(spec)
    return builder.build()


def _chain(src, dst, *, links=2, compute_delay=8, pattern=7):
    """read -> compute -> write, repeated ``links`` times, each link
    gated on the previous one's write."""
    program = []
    for link in range(links):
        base = len(program)
        program.append(DmaDescriptor(
            "read", address=src + link * 32,
            after=(base - 1,) if link else (),
        ))
        program.append(DmaDescriptor(
            "compute", delay=compute_delay, after=(base,),
        ))
        program.append(DmaDescriptor(
            "write", address=dst + link * 32, after=(base + 1,),
            pattern=pattern + link,
        ))
    return program


class TestDmaEngine:
    def test_chain_orders_and_lands_in_memory(self):
        engine = DmaEngine("dma0", _chain(0x0, 0x100, links=2, pattern=11))
        soc = _dma_soc({"dma0": engine})
        soc.run_to_completion()
        assert engine.done()
        # Written data is the deterministic pattern, verifiable in the
        # target memory image.
        mem = soc.memories["mem"]
        for k in range(8):
            assert mem.read_beat(0x100 + 4 * k, 4) == (11 + k) & 0xFFFFFFFF
            assert mem.read_beat(0x120 + 4 * k, 4) == (12 + k) & 0xFFFFFFFF

    def test_dependency_order_under_adaptive_routing_with_fault(self):
        """The dependency DAG holds under adaptive routing even when a
        mid-run fault epoch reroutes the flows."""
        engines = {
            f"dma{i}": DmaEngine(
                f"dma{i}", _chain(0x40 * i, 0x2000 + 0x40 * i,
                                  links=3, pattern=3 * i)
            )
            for i in range(4)
        }
        # Endpoint 0 homes at router (0, 0) and the memory at (0, 1);
        # downing that link mid-run removes dma0's only minimal hop, so
        # the recomputed epoch must detour its remaining flows.
        faults = FaultSchedule().link_down(60, (0, 0), (0, 1))
        soc = _dma_soc(
            engines, adaptive=True, faults=faults,
            targets=[TargetSpec("mem", size=0x4000, read_latency=3,
                                write_latency=2)],
        )
        soc.run_to_completion()
        degraded = sum(
            r.faults_hit
            for plane in soc.fabric._planes
            for r in plane.routers.values()
        )
        assert degraded > 0, "the fault epoch never degraded a grant"
        for engine in engines.values():
            assert engine.done()
            complete = {}
            for desc, burst, cycle in engine.complete_log:
                complete[desc] = cycle
            issued = {desc: cycle for desc, _, cycle in engine.issue_log}
            for link in range(3):
                read, compute, write = 3 * link, 3 * link + 1, 3 * link + 2
                # compute completes strictly after its read dependency...
                assert complete[compute] >= complete[read] + 8
                # ...and the write never issues before the compute is done.
                assert issued[write] >= complete[compute]
                if link:
                    assert issued[read] >= complete[write - 3]

    def test_unmapped_address_halts_by_name(self):
        engine = DmaEngine(
            "dma0", [DmaDescriptor("read", address=0x9_0000)]
        )
        soc = _dma_soc({"dma0": engine})
        with pytest.raises(WorkloadStallError) as err:
            soc.run_to_completion(max_cycles=2_000)
        assert "dma0" in str(err.value)
        assert "halted" in str(err.value)
        assert "DECERR" in str(err.value)

    def test_starved_wait_diagnosed_not_silent(self):
        """A program that can never complete raises the named stall error
        (with the starved channel) instead of a bare budget timeout."""
        never = StreamChannel("never")
        engine = DmaEngine(
            "dma0", [DmaDescriptor("read", address=0, wait=never)]
        )
        soc = _dma_soc({"dma0": engine})
        with pytest.raises(WorkloadStallError) as err:
            soc.run_to_completion(max_cycles=2_000)
        assert "starved" in str(err.value)
        assert "never" in str(err.value)


# --------------------------------------------------------------------- #
# streams + collectives
# --------------------------------------------------------------------- #
class TestStreams:
    def test_credit_backpressure_bounds_producer_lead(self):
        depth, total = 3, 12
        engines, channels = stream_pair(
            "prod", "cons", buffer_base=0, total_bursts=total, depth=depth
        )
        soc = _dma_soc(engines)
        soc.run_to_completion()
        prod, cons = engines["prod"], engines["cons"]
        assert prod.done() and cons.done()
        assert channels["data"].total() == total
        # Burst b of the producer needs b+1 credit tokens: the initial
        # `depth` preload plus one per completed consumer read — so the
        # producer can never run more than `depth` bursts ahead.
        cons_complete = {
            burst: cycle for desc, burst, cycle in cons.complete_log
        }
        lead_limited = 0
        for desc, burst, cycle in prod.issue_log:
            if burst >= depth:
                assert cons_complete[burst - depth] < cycle
                lead_limited += 1
        assert lead_limited == total - depth

    def test_all_to_all_and_neighbor_exchange_complete(self):
        names = [f"m{i}" for i in range(4)]
        for engines in (
            all_to_all(names, mailbox_base=0, chunk_bytes=64),
            near_neighbor_exchange(names, 2, 2, mailbox_base=0,
                                   chunk_bytes=64),
        ):
            soc = _dma_soc(engines)
            soc.run_to_completion()
            assert all(engine.done() for engine in engines.values())


# --------------------------------------------------------------------- #
# trace record -> replay
# --------------------------------------------------------------------- #
def _hotspot_soc(sources, *, strict=False, router_core=None):
    """Scaled-down adaptive hotspot: four masters, one slow hot target."""
    reset_ids()
    builder = SocBuilder(
        name="hotspot", strict_kernel=strict, router_core=router_core,
        topology=topo.torus(4, 4, endpoints=len(sources) + 2),
        routing="adaptive", vcs=3, vc_policy="escape",
        workload=dict(sources),
    )
    for name in sources:
        builder.add_initiator(
            InitiatorSpec(name, "AXI", protocol_kwargs={"id_count": 4})
        )
    builder.add_target(TargetSpec("hot", size=0x2000, read_latency=10,
                                  write_latency=5, max_outstanding=1))
    builder.add_target(TargetSpec("bg", size=0x2000, read_latency=2,
                                  write_latency=1))
    return builder.build()


def _hotspot_sources():
    return {
        f"ip{i}": PoissonTraffic(
            f"ip{i}", seed=40 + i, count=25,
            address_ranges=[(0, 0x2000)] if i % 2 else [(0x2000, 0x2000)],
            rate=0.5, tags=4, burst_beats=(2, 4),
        )
        for i in range(4)
    }


class TestTraceRoundTrip:
    @pytest.mark.parametrize("core", ["object", "array", "batched"])
    def test_replay_reproduces_fingerprint(self, core):
        writer = TraceWriter(note="adaptive hotspot")
        recorded = {
            name: writer.record(name, source)
            for name, source in _hotspot_sources().items()
        }
        soc = _hotspot_soc(recorded, router_core=core)
        soc.run_to_completion()
        original = fingerprint_soc(soc)

        replay = TraceReplay.from_jsonl(writer.to_jsonl())
        assert replay.masters() == sorted(recorded)
        replayed = {name: replay.source(name) for name in recorded}
        soc2 = _hotspot_soc(replayed, router_core=core)
        soc2.run_to_completion()
        assert fingerprint_soc(soc2) == original

    def test_jsonl_round_trip_preserves_events(self):
        writer = TraceWriter(note="rt")
        recorded = {
            name: writer.record(name, source)
            for name, source in _hotspot_sources().items()
        }
        soc = _hotspot_soc(recorded)
        soc.run_to_completion()
        replay = TraceReplay.from_jsonl(writer.to_jsonl())
        assert replay.note == "rt"
        for name in recorded:
            assert replay.events(name) == writer.events(name)
            assert len(replay.events(name)) == 25

    def test_duplicate_recording_rejected(self):
        writer = TraceWriter()
        writer.record("m", PoissonTraffic("m", seed=1, count=1,
                                          address_ranges=[(0, 64)]))
        with pytest.raises(ValueError, match="already"):
            writer.record("m", PoissonTraffic("m", seed=1, count=1,
                                              address_ranges=[(0, 64)]))

    @pytest.mark.parametrize("text, match", [
        ("", "empty"),
        ("not json\n", "header"),
        ('{"format": "other", "version": 1}\n', "not a repro-trace"),
        ('{"format": "repro-trace", "version": 99, "masters": []}\n',
         "version"),
        ('{"format": "repro-trace", "version": 1, "masters": ["a"]}\n'
         '{"m": "ghost", "c": 0}\n', "unknown master"),
        ('{"format": "repro-trace", "version": 1, "masters": ["a"]}\n'
         '{"m": "a", "c": 0}\n', "missing fields"),
    ])
    def test_format_errors_are_named(self, text, match):
        with pytest.raises(TraceFormatError, match=match):
            TraceReplay.from_jsonl(text)

    def test_unknown_master_source(self):
        replay = TraceReplay.from_jsonl(
            '{"format": "repro-trace", "version": 1, "masters": ["a"]}\n'
        )
        with pytest.raises(TraceFormatError, match="no stream"):
            replay.source("b")

    def test_divergent_replay_raises(self):
        event = {"c": 5, "o": "READ", "a": 0, "n": 1, "w": 4, "b": "INCR",
                 "d": None, "t": 0, "g": 0, "x": 0, "p": 0}
        source = TraceReplaySource("m", [event])
        assert source.poll(4) is None  # early poll waits
        with pytest.raises(TraceReplayError, match="recorded at cycle 5"):
            source.poll(6)


# --------------------------------------------------------------------- #
# declarative TrafficSpec
# --------------------------------------------------------------------- #
class TestTrafficSpec:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            TrafficSpec(kind="fractal").validate()

    def test_seed_required_for_random_kinds(self):
        for kind in ("poisson", "dependent", "sync"):
            with pytest.raises(TrafficSeedError):
                TrafficSpec(kind=kind, master="m", pairs=[(0, 64)],
                            seed=None).validate()

    def test_legacy_constructor_routes_through_spec_validation(self):
        with pytest.raises(TrafficSeedError):
            PoissonTraffic("m", seed=None, count=1,
                           address_ranges=[(0, 64)])
        with pytest.raises(ValueError, match="rate"):
            TrafficSpec(kind="poisson", master="m", seed=1,
                        pairs=[(0, 64)], rate=1.5).validate()

    def test_master_required_to_build(self):
        with pytest.raises(ValueError, match="master name"):
            TrafficSpec(kind="poisson", seed=1, pairs=[(0, 64)]).build()

    def test_spec_equivalent_to_legacy_constructor(self):
        """SocBuilder(traffic=[...]) and direct construction produce the
        byte-identical run."""
        def build(declarative):
            reset_ids()
            builder = SocBuilder(name="eq", strict_kernel=False)
            for i in range(2):
                source = None
                if not declarative:
                    source = PoissonTraffic(
                        f"m{i}", seed=7 + i, count=15,
                        address_ranges=[(0, 0x1000)], rate=0.4,
                    )
                builder.add_initiator(
                    InitiatorSpec(f"m{i}", "AXI", source,
                                  protocol_kwargs={"id_count": 2})
                )
            if declarative:
                builder.traffic = [
                    TrafficSpec(kind="poisson", master=f"m{i}", seed=7 + i,
                                count=15, pairs=[(0, 0x1000)], rate=0.4)
                    for i in range(2)
                ]
            builder.add_target(TargetSpec("mem", size=0x1000))
            soc = builder.build()
            soc.run_to_completion()
            return fingerprint_soc(soc)

        assert build(declarative=True) == build(declarative=False)

    def test_builder_rejects_bad_traffic_entries(self):
        builder = SocBuilder(traffic=[object()])
        builder.add_initiator(InitiatorSpec("m", "AXI"))
        builder.add_target(TargetSpec("mem", size=0x1000))
        with pytest.raises(ValueError, match="TrafficSpec"):
            builder.build()

    def test_builder_rejects_unknown_and_duplicate_masters(self):
        spec = TrafficSpec(kind="stream", master="ghost", base=0)
        builder = SocBuilder(traffic=[spec])
        builder.add_initiator(InitiatorSpec("m", "AXI"))
        builder.add_target(TargetSpec("mem", size=0x1000))
        with pytest.raises(ValueError, match="no initiator named 'ghost'"):
            builder.build()

        dup = TrafficSpec(kind="stream", master="m", base=0)
        builder2 = SocBuilder(
            traffic=[dup], workload={"m": TrafficSpec(kind="stream",
                                                      master="m", base=0)}
        )
        builder2.add_initiator(InitiatorSpec("m", "AXI"))
        builder2.add_target(TargetSpec("mem", size=0x1000))
        with pytest.raises(ValueError, match="twice"):
            builder2.build()

    def test_dma_kind_builds_engine(self):
        spec = TrafficSpec(kind="dma", master="m",
                           program=[DmaDescriptor("read")])
        engine = spec.build()
        assert isinstance(engine, DmaEngine)
        with pytest.raises(ValueError, match="program"):
            TrafficSpec(kind="dma", master="m").validate()


# --------------------------------------------------------------------- #
# cross-kernel / cross-core determinism + checkpointing
# --------------------------------------------------------------------- #
class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", ["dma_chain", "stream_pipeline",
                                      "collective_allreduce"])
    def test_strict_and_activity_agree(self, name):
        prints = []
        for strict in (True, False):
            reset_ids()
            soc = get(name).build(strict_kernel=strict)
            soc.run_to_completion()
            prints.append(fingerprint_soc(soc))
        assert prints[0] == prints[1]

    @pytest.mark.parametrize("core", ["object", "array", "batched"])
    def test_router_cores_agree_on_dma_chain(self, core):
        reset_ids()
        soc = get("dma_chain").build(strict_kernel=False, router_core=core)
        soc.run_to_completion()
        reset_ids()
        ref = get("dma_chain").build(strict_kernel=True, router_core=core)
        ref.run_to_completion()
        assert fingerprint_soc(soc) == fingerprint_soc(ref)

    def test_checkpoint_restores_mid_chain(self):
        """Capture a DMA run mid-chain; the restored continuation matches
        the uninterrupted run byte-for-byte."""
        reset_ids()
        soc = get("dma_chain").build(strict_kernel=False)
        soc.run(150)
        checkpoint = Checkpoint.capture(soc)
        soc.run_to_completion()
        uninterrupted = fingerprint_soc(soc)

        reset_ids()
        fresh = get("dma_chain").build(strict_kernel=False)
        checkpoint.restore_into(fresh)
        assert fresh.sim.cycle == 150
        fresh.run_to_completion()
        assert fingerprint_soc(fresh) == uninterrupted
