"""Unit tests for routing-table computation and XY routing."""

import pytest

from repro.transport import topology as topo
from repro.transport.routing import (
    RoutingError,
    compute_routing_tables,
    compute_xy_tables,
    port_local,
    port_to,
    xy_route,
)


def follow_route(topology, tables, src_ep, dst_ep, max_hops=64):
    """Walk the tables from src's router until ejection; returns hops."""
    router = topology.router_of(src_ep)
    hops = 0
    while True:
        port = tables[router][dst_ep]
        if port == port_local(dst_ep):
            return hops
        assert port.startswith("to:")
        router = next(
            n for n in topology.graph.neighbors(router) if port == port_to(n)
        )
        hops += 1
        assert hops <= max_hops, "routing loop"


class TestTableRouting:
    @pytest.mark.parametrize(
        "topology",
        [
            topo.mesh(3, 3),
            topo.torus(3, 3),
            topo.ring(6),
            topo.star(4, endpoints=4),
            topo.tree(2, 2, endpoints=4),
            topo.single_router(4),
        ],
        ids=lambda t: t.name,
    )
    def test_tables_complete_and_loop_free(self, topology):
        tables = compute_routing_tables(topology)
        for src in topology.endpoints:
            for dst in topology.endpoints:
                hops = follow_route(topology, tables, src, dst)
                assert hops == topology.hop_distance(src, dst)

    def test_tables_deterministic(self):
        t = topo.mesh(4, 4)
        assert compute_routing_tables(t) == compute_routing_tables(t)

    def test_local_delivery_at_home_router(self):
        t = topo.mesh(2, 2)
        tables = compute_routing_tables(t)
        home = t.router_of(3)
        assert tables[home][3] == port_local(3)


class TestXyRouting:
    def test_x_first(self):
        assert xy_route((0, 0), (2, 2)) == (1, 0)
        assert xy_route((2, 0), (2, 2)) == (2, 1)

    def test_negative_direction(self):
        assert xy_route((2, 2), (0, 2)) == (1, 2)
        assert xy_route((0, 2), (0, 0)) == (0, 1)

    def test_same_router_rejected(self):
        with pytest.raises(RoutingError):
            xy_route((1, 1), (1, 1))

    def test_non_tuple_ids_rejected(self):
        with pytest.raises(RoutingError):
            xy_route(0, 1)

    def test_xy_tables_match_shortest_paths_on_mesh(self):
        t = topo.mesh(4, 3)
        tables = compute_xy_tables(t)
        for src in t.endpoints:
            for dst in t.endpoints:
                hops = follow_route(t, tables, src, dst)
                assert hops == t.hop_distance(src, dst)

    def test_xy_tables_reject_non_mesh(self):
        t = topo.ring(4)
        with pytest.raises(RoutingError):
            compute_xy_tables(t)
