"""Unit tests for NoC services: exclusive monitor and lock manager."""

import pytest

from repro.core.services import (
    EXCL_USER_BIT,
    ExclusiveMonitor,
    ExclusiveResult,
    LockError,
    LockManager,
    NocService,
)


class TestServiceDefinitions:
    def test_exclusive_uses_exactly_one_packet_bit(self):
        """Paper §3: exclusive access costs 'a single user-defined bit'."""
        bits = NocService.EXCLUSIVE_ACCESS.packet_bits
        assert len(bits) == 1
        assert bits[0].width == 1
        assert bits[0] is EXCL_USER_BIT

    def test_lock_uses_no_packet_bits_but_touches_transport(self):
        assert NocService.LEGACY_LOCK.packet_bits == []
        assert NocService.LEGACY_LOCK.touches_transport

    def test_exclusive_does_not_touch_transport(self):
        assert not NocService.EXCLUSIVE_ACCESS.touches_transport
        assert not NocService.URGENCY.touches_transport


class TestExclusiveMonitor:
    def test_basic_success(self):
        m = ExclusiveMonitor()
        m.exclusive_load(initiator=1, address=0x100, span=4, cycle=0)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.EXOKAY
        assert m.grants == 1

    def test_store_without_reservation_fails(self):
        m = ExclusiveMonitor()
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.OKAY_FAILED
        assert m.failures == 1

    def test_intervening_store_kills_reservation(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.observe_store(initiator=2, address=0x100, span=4)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.OKAY_FAILED

    def test_own_store_does_not_kill_own_reservation(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.observe_store(initiator=1, address=0x100, span=4)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.EXOKAY

    def test_non_overlapping_store_leaves_reservation(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.observe_store(2, 0x200, 4)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.EXOKAY

    def test_reservation_consumed_either_way(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.exclusive_store(1, 0x100, 4)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.OKAY_FAILED

    def test_successful_store_kills_other_reservations(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.exclusive_load(2, 0x100, 4, cycle=1)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.EXOKAY
        assert m.exclusive_store(2, 0x100, 4) is ExclusiveResult.OKAY_FAILED

    def test_reload_replaces_reservation(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.exclusive_load(1, 0x200, 4, cycle=1)
        assert m.exclusive_store(1, 0x100, 4) is ExclusiveResult.OKAY_FAILED

    def test_capacity_eviction(self):
        m = ExclusiveMonitor(max_reservations=2)
        m.exclusive_load(1, 0x100, 4, cycle=0)
        m.exclusive_load(2, 0x200, 4, cycle=1)
        m.exclusive_load(3, 0x300, 4, cycle=2)  # evicts initiator 1
        assert m.evictions == 1
        assert not m.has_reservation(1)
        assert m.exclusive_store(3, 0x300, 4) is ExclusiveResult.EXOKAY

    def test_partial_overlap_counts(self):
        m = ExclusiveMonitor()
        m.exclusive_load(1, 0x100, 8, cycle=0)
        m.observe_store(2, 0x104, 4)  # overlaps tail of the reservation
        assert m.exclusive_store(1, 0x100, 8) is ExclusiveResult.OKAY_FAILED

    def test_bad_span_rejected(self):
        m = ExclusiveMonitor()
        with pytest.raises(ValueError):
            m.exclusive_load(1, 0, 0, cycle=0)


class TestLockManager:
    def test_acquire_release(self):
        lm = LockManager()
        assert lm.acquire(1)
        assert lm.locked and lm.holder == 1
        lm.release(1)
        assert not lm.locked

    def test_contention(self):
        lm = LockManager()
        lm.acquire(1)
        assert not lm.acquire(2)
        assert lm.waiting == 1
        lm.release(1)
        assert lm.acquire(2)
        assert lm.waiting == 0

    def test_may_proceed(self):
        lm = LockManager()
        assert lm.may_proceed(1)
        lm.acquire(1)
        assert lm.may_proceed(1)
        assert not lm.may_proceed(2)

    def test_double_lock_rejected(self):
        lm = LockManager()
        lm.acquire(1)
        with pytest.raises(LockError):
            lm.acquire(1)

    def test_foreign_release_rejected(self):
        lm = LockManager()
        lm.acquire(1)
        with pytest.raises(LockError):
            lm.release(2)

    def test_blocked_cycle_accounting(self):
        lm = LockManager()
        lm.note_blocked(3)
        assert lm.blocked_cycles == 3
