"""Whole-SoC integration: mixed protocols, determinism, data integrity."""

import pytest

from repro.bus.system import build_bus_soc
from repro.core.transaction import make_read, make_write
from repro.ip.masters import cpu_workload, dma_workload, random_workload
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, LinkSpec, SocBuilder, TargetSpec
from repro.transport import topology as topo


def mixed_specs(count=25):
    ranges = [(0, 0x1000), (0x1000, 0x1000)]
    inits = [
        InitiatorSpec("cpu0", "AHB", cpu_workload("cpu0", ranges, count=count, seed=1)),
        InitiatorSpec("gpu0", "AXI",
                      random_workload("gpu0", ranges, count=count, seed=2, tags=4),
                      protocol_kwargs={"id_count": 4}),
        InitiatorSpec("dsp0", "OCP",
                      random_workload("dsp0", ranges, count=count, seed=3, threads=2),
                      protocol_kwargs={"threads": 2}),
        InitiatorSpec("io0", "BVCI",
                      random_workload("io0", ranges, count=count, seed=4)),
        InitiatorSpec("acc0", "PROPRIETARY",
                      dma_workload("acc0", base=0x800, bytes_total=256)),
    ]
    tgts = [TargetSpec("mem0", size=0x1000), TargetSpec("mem1", size=0x1000)]
    return inits, tgts


def build_soc(**kwargs):
    inits, tgts = mixed_specs()
    builder = SocBuilder(**kwargs)
    for spec in inits:
        builder.add_initiator(spec)
    for spec in tgts:
        builder.add_target(spec)
    return builder.build()


class TestMixedProtocolSoc:
    def test_five_socket_families_share_one_fabric(self):
        soc = build_soc()
        soc.run_to_completion(max_cycles=100_000)
        assert soc.total_completed() > 0
        assert soc.ordering_violations() == 0
        protocols = {m.protocol_name for m in soc.masters.values()}
        assert protocols == {"AHB", "AXI", "OCP", "BVCI", "PROPRIETARY"}

    def test_layer_config_derived_from_sockets(self):
        soc = build_soc()
        fmt = soc.layer_config.packet_format
        assert fmt.has_user_bit("excl")  # AXI + OCP present
        assert soc.fabric.packet_format is fmt

    def test_deterministic_across_runs(self):
        a = build_soc()
        ca = a.run_to_completion(max_cycles=100_000)
        b = build_soc()
        cb = b.run_to_completion(max_cycles=100_000)
        assert ca == cb
        assert a.memory_image() == b.memory_image()
        for name in a.masters:
            assert a.master_latency(name) == b.master_latency(name)

    def test_shared_memory_coherent_view(self):
        """A value written by one master is read back by another."""
        writer = InitiatorSpec(
            "w", "AXI", ScriptedTraffic([make_write(0x500, [0x77, 0x88])])
        )
        builder = SocBuilder()
        builder.add_initiator(writer)
        builder.add_target(TargetSpec("mem0", size=0x1000))
        soc = builder.build()
        soc.run_to_completion(max_cycles=20_000)

        reader_spec = InitiatorSpec(
            "r", "OCP", ScriptedTraffic([make_read(0x500, beats=2)]),
            protocol_kwargs={"threads": 1},
        )
        builder2 = SocBuilder()
        builder2.add_initiator(reader_spec)
        builder2.add_target(TargetSpec("mem0", size=0x1000))
        soc2 = builder2.build()
        # Pre-load the second SoC's memory from the first one's image.
        for offset, value in soc.memories["mem0"].store.image().items():
            soc2.memories["mem0"].store.write_beat(offset, value, 1)
        soc2.run_to_completion(max_cycles=20_000)
        assert soc2.memories["mem0"].read_beat(0x500, 4) == 0x77


class TestTopologyAndFabricKnobs:
    @pytest.mark.parametrize(
        "topology_factory",
        [
            lambda: topo.mesh(3, 3, endpoints=7),
            lambda: topo.ring(7, endpoints=7),
            lambda: topo.star(7, endpoints=7),
            lambda: topo.single_router(7),
        ],
        ids=["mesh", "ring", "star", "xbar"],
    )
    def test_any_topology_carries_the_soc(self, topology_factory):
        inits, tgts = mixed_specs(count=10)
        builder = SocBuilder(topology=topology_factory())
        for spec in inits:
            builder.add_initiator(spec)
        for spec in tgts:
            builder.add_target(spec)
        soc = builder.build()
        soc.run_to_completion(max_cycles=200_000)
        assert soc.ordering_violations() == 0

    def test_arbiter_knob(self):
        soc = build_soc(arbiter="age")
        soc.run_to_completion(max_cycles=100_000)
        assert soc.ordering_violations() == 0

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            SocBuilder().build()
        builder = SocBuilder()
        builder.add_initiator(
            InitiatorSpec("a", "AHB", ScriptedTraffic([]))
        )
        with pytest.raises(ValueError):
            builder.build()  # no targets
        with pytest.raises(ValueError):
            builder.add_initiator(
                InitiatorSpec("a", "AHB", ScriptedTraffic([]))
            )

    def test_explicit_target_bases(self):
        builder = SocBuilder()
        builder.add_initiator(
            InitiatorSpec("m", "AHB",
                          ScriptedTraffic([make_read(0x8000_0000)]))
        )
        builder.add_target(TargetSpec("lo", size=0x1000))
        builder.add_target(TargetSpec("hi", size=0x1000, base=0x8000_0000))
        soc = builder.build()
        soc.run_to_completion(max_cycles=20_000)
        assert soc.masters["m"].completed == 1
        assert soc.masters["m"].errors == 0

    def test_aliased_target_base_rejected(self):
        """An explicit TargetSpec.base that overlaps an already-assigned
        range is a spec bug: the builder raises, naming the offender."""
        builder = SocBuilder()
        builder.add_initiator(
            InitiatorSpec("m", "AHB", ScriptedTraffic([]))
        )
        builder.add_target(TargetSpec("lo", size=0x1000))
        builder.add_target(TargetSpec("alias", size=0x1000, base=0x800))
        with pytest.raises(ValueError, match="alias"):
            builder.build()

    def test_aliased_target_base_rejected_by_bus_builder(self):
        inits = [InitiatorSpec("m", "AHB", ScriptedTraffic([]))]
        tgts = [
            TargetSpec("lo", size=0x1000),
            TargetSpec("alias", size=0x100, base=0x0),
        ]
        with pytest.raises(ValueError, match="alias"):
            build_bus_soc(inits, tgts)


class TestPhysicalLayerKnobs:
    def _scripted_specs(self):
        script = [
            make_write(0x100, [0x11, 0x22, 0x33, 0x44]),
            make_write(0x1200, [0xAA]),
            make_read(0x100, beats=4),
            make_read(0x1200),
        ]
        inits = [
            InitiatorSpec("cpu", "AXI", ScriptedTraffic(list(script)),
                          protocol_kwargs={"id_count": 2}),
        ]
        tgts = [TargetSpec("mem0", size=0x1000), TargetSpec("mem1", size=0x1000)]
        return inits, tgts

    def _build(self, **kwargs):
        inits, tgts = self._scripted_specs()
        builder = SocBuilder(**kwargs)
        for spec in inits:
            builder.add_initiator(spec)
        for spec in tgts:
            builder.add_target(spec)
        return builder.build()

    def test_physical_layer_invisible_to_transactions(self):
        """The paper's claim: narrow links, wire pipelining, GALS domains
        and CDCs change timing only — the transaction outcome (completions,
        errors, memory image) is identical to the ideal physical layer."""
        ideal = self._build()
        ideal.run_to_completion(max_cycles=50_000)

        inits, tgts = self._scripted_specs()
        builder = SocBuilder(
            links={
                "router": LinkSpec(phit_bits=24, pipeline_latency=2),
                "endpoint": LinkSpec(phit_bits=48),
            },
            clock_domains={"slow": 3, "fab": 1},
            fabric_region="fab",
        )
        for spec in inits:
            spec.region = "slow"
            builder.add_initiator(spec)
        for spec in tgts:
            builder.add_target(spec)
        phys = builder.build()
        phys.run_to_completion(max_cycles=400_000)

        assert phys.total_completed() == ideal.total_completed()
        assert phys.memory_image() == ideal.memory_image()
        assert phys.ordering_violations() == 0
        for master in phys.masters.values():
            assert master.errors == 0
        # ...and the physical path was genuinely exercised.
        assert phys.fabric.total_phits_carried() > 0
        assert phys.sim.cycle > ideal.sim.cycle  # slower, not different

    def test_default_build_has_no_physical_components(self):
        """Zero-cost default: no LinkSpec/region knobs → no PhysicalLink
        components, identical wiring to the pre-physical-layer fabric."""
        soc = self._build()
        assert soc.fabric.physical_links == []
        assert not any(".phy" in name for name in soc.sim._component_names)

    def test_narrow_links_only_no_domains(self):
        soc = self._build(links=LinkSpec(phit_bits=16))
        soc.run_to_completion(max_cycles=200_000)
        assert soc.total_completed() == 4
        assert soc.fabric.total_phits_carried() > 0

    def test_unknown_region_rejected(self):
        inits, tgts = self._scripted_specs()
        builder = SocBuilder(clock_domains={"a": 2})
        for spec in inits:
            spec.region = "missing"
            builder.add_initiator(spec)
        for spec in tgts:
            builder.add_target(spec)
        with pytest.raises(ValueError, match="missing"):
            builder.build()

    def test_unknown_fabric_region_rejected(self):
        inits, tgts = self._scripted_specs()
        builder = SocBuilder(fabric_region="nope")
        for spec in inits:
            builder.add_initiator(spec)
        for spec in tgts:
            builder.add_target(spec)
        with pytest.raises(ValueError, match="nope"):
            builder.build()

    def test_unknown_link_class_rejected(self):
        with pytest.raises(ValueError, match="link class"):
            SocBuilder(links={"diagonal": LinkSpec()})._resolve_links()
