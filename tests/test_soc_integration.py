"""Whole-SoC integration: mixed protocols, determinism, data integrity."""

import pytest

from repro.core.transaction import make_read, make_write
from repro.ip.masters import cpu_workload, dma_workload, random_workload
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec
from repro.transport import topology as topo
from repro.transport.switching import SwitchingMode


def mixed_specs(count=25):
    ranges = [(0, 0x1000), (0x1000, 0x1000)]
    inits = [
        InitiatorSpec("cpu0", "AHB", cpu_workload("cpu0", ranges, count=count, seed=1)),
        InitiatorSpec("gpu0", "AXI",
                      random_workload("gpu0", ranges, count=count, seed=2, tags=4),
                      protocol_kwargs={"id_count": 4}),
        InitiatorSpec("dsp0", "OCP",
                      random_workload("dsp0", ranges, count=count, seed=3, threads=2),
                      protocol_kwargs={"threads": 2}),
        InitiatorSpec("io0", "BVCI",
                      random_workload("io0", ranges, count=count, seed=4)),
        InitiatorSpec("acc0", "PROPRIETARY",
                      dma_workload("acc0", base=0x800, bytes_total=256)),
    ]
    tgts = [TargetSpec("mem0", size=0x1000), TargetSpec("mem1", size=0x1000)]
    return inits, tgts


def build_soc(**kwargs):
    inits, tgts = mixed_specs()
    builder = SocBuilder(**kwargs)
    for spec in inits:
        builder.add_initiator(spec)
    for spec in tgts:
        builder.add_target(spec)
    return builder.build()


class TestMixedProtocolSoc:
    def test_five_socket_families_share_one_fabric(self):
        soc = build_soc()
        soc.run_to_completion(max_cycles=100_000)
        assert soc.total_completed() > 0
        assert soc.ordering_violations() == 0
        protocols = {m.protocol_name for m in soc.masters.values()}
        assert protocols == {"AHB", "AXI", "OCP", "BVCI", "PROPRIETARY"}

    def test_layer_config_derived_from_sockets(self):
        soc = build_soc()
        fmt = soc.layer_config.packet_format
        assert fmt.has_user_bit("excl")  # AXI + OCP present
        assert soc.fabric.packet_format is fmt

    def test_deterministic_across_runs(self):
        a = build_soc()
        ca = a.run_to_completion(max_cycles=100_000)
        b = build_soc()
        cb = b.run_to_completion(max_cycles=100_000)
        assert ca == cb
        assert a.memory_image() == b.memory_image()
        for name in a.masters:
            assert a.master_latency(name) == b.master_latency(name)

    def test_shared_memory_coherent_view(self):
        """A value written by one master is read back by another."""
        writer = InitiatorSpec(
            "w", "AXI", ScriptedTraffic([make_write(0x500, [0x77, 0x88])])
        )
        builder = SocBuilder()
        builder.add_initiator(writer)
        builder.add_target(TargetSpec("mem0", size=0x1000))
        soc = builder.build()
        soc.run_to_completion(max_cycles=20_000)

        reader_spec = InitiatorSpec(
            "r", "OCP", ScriptedTraffic([make_read(0x500, beats=2)]),
            protocol_kwargs={"threads": 1},
        )
        builder2 = SocBuilder()
        builder2.add_initiator(reader_spec)
        builder2.add_target(TargetSpec("mem0", size=0x1000))
        soc2 = builder2.build()
        # Pre-load the second SoC's memory from the first one's image.
        for offset, value in soc.memories["mem0"].store.image().items():
            soc2.memories["mem0"].store.write_beat(offset, value, 1)
        soc2.run_to_completion(max_cycles=20_000)
        assert soc2.memories["mem0"].read_beat(0x500, 4) == 0x77


class TestTopologyAndFabricKnobs:
    @pytest.mark.parametrize(
        "topology_factory",
        [
            lambda: topo.mesh(3, 3, endpoints=7),
            lambda: topo.ring(7, endpoints=7),
            lambda: topo.star(7, endpoints=7),
            lambda: topo.single_router(7),
        ],
        ids=["mesh", "ring", "star", "xbar"],
    )
    def test_any_topology_carries_the_soc(self, topology_factory):
        inits, tgts = mixed_specs(count=10)
        builder = SocBuilder(topology=topology_factory())
        for spec in inits:
            builder.add_initiator(spec)
        for spec in tgts:
            builder.add_target(spec)
        soc = builder.build()
        soc.run_to_completion(max_cycles=200_000)
        assert soc.ordering_violations() == 0

    def test_arbiter_knob(self):
        soc = build_soc(arbiter="age")
        soc.run_to_completion(max_cycles=100_000)
        assert soc.ordering_violations() == 0

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            SocBuilder().build()
        builder = SocBuilder()
        builder.add_initiator(
            InitiatorSpec("a", "AHB", ScriptedTraffic([]))
        )
        with pytest.raises(ValueError):
            builder.build()  # no targets
        with pytest.raises(ValueError):
            builder.add_initiator(
                InitiatorSpec("a", "AHB", ScriptedTraffic([]))
            )

    def test_explicit_target_bases(self):
        builder = SocBuilder()
        builder.add_initiator(
            InitiatorSpec("m", "AHB",
                          ScriptedTraffic([make_read(0x8000_0000)]))
        )
        builder.add_target(TargetSpec("lo", size=0x1000))
        builder.add_target(TargetSpec("hi", size=0x1000, base=0x8000_0000))
        soc = builder.build()
        soc.run_to_completion(max_cycles=20_000)
        assert soc.masters["m"].completed == 1
        assert soc.masters["m"].errors == 0
