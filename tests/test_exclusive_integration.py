"""Synchronization styles end-to-end (paper §3, benchmark E3).

Lock-based (blocking) and exclusive-based (non-blocking) critical
sections both work; locks block unrelated traffic, exclusives don't.
"""


from repro.core.transaction import make_read
from repro.ip.masters import sync_workload
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec


def sync_soc(style, contenders=2, iterations=3, bystander=False):
    builder = SocBuilder()
    protocol = "AHB" if style == "lock" else "AXI"
    for i in range(contenders):
        builder.add_initiator(
            InitiatorSpec(
                f"sync{i}",
                protocol,
                sync_workload(
                    f"sync{i}", style,
                    sema_addr=0x0,
                    work_addr=0x100 + 0x40 * i,
                    iterations=iterations,
                    seed=i,
                ),
            )
        )
    if bystander:
        builder.add_initiator(
            InitiatorSpec(
                "bystander", "BVCI",
                ScriptedTraffic([make_read(0x1000 + 0x10 * i)
                                 for i in range(20)]),
            )
        )
    builder.add_target(TargetSpec("sema", size=0x1000))
    builder.add_target(TargetSpec("other", size=0x1000))
    return builder.build()


class TestLockStyle:
    def test_critical_sections_complete(self):
        soc = sync_soc("lock", contenders=2, iterations=3)
        soc.run_to_completion(max_cycles=200_000)
        for i in range(2):
            workload = soc.masters[f"sync{i}"].traffic
            assert workload.sections_completed == 3

    def test_lock_released_at_end(self):
        soc = sync_soc("lock")
        soc.run_to_completion(max_cycles=200_000)
        locks = soc.target_nius["sema"].locks
        assert locks is not None
        assert not locks.locked
        assert locks.acquisitions == 6  # 2 masters x 3 iterations

    def test_lock_blocks_target_for_others(self):
        soc = sync_soc("lock", contenders=2)
        soc.run_to_completion(max_cycles=200_000)
        locks = soc.target_nius["sema"].locks
        assert locks.blocked_cycles > 0


class TestExclStyle:
    def test_critical_sections_complete(self):
        soc = sync_soc("excl", contenders=2, iterations=3)
        soc.run_to_completion(max_cycles=200_000)
        for i in range(2):
            workload = soc.masters[f"sync{i}"].traffic
            assert workload.sections_completed == 3

    def test_monitor_sees_traffic(self):
        soc = sync_soc("excl", contenders=2, iterations=3)
        soc.run_to_completion(max_cycles=200_000)
        monitor = soc.target_nius["sema"].monitor
        assert monitor is not None
        assert monitor.grants >= 6  # at least one EXOKAY per section
        assert monitor.live_reservations == 0

    def test_contention_causes_retries_not_deadlock(self):
        soc = sync_soc("excl", contenders=4, iterations=2)
        soc.run_to_completion(max_cycles=400_000)
        total_sections = sum(
            soc.masters[f"sync{i}"].traffic.sections_completed
            for i in range(4)
        )
        assert total_sections == 8


class TestBlockingContrast:
    """The paper's reason for exclusive accesses: they are non-blocking."""

    def test_lock_style_stalls_fabric_excl_does_not(self):
        lock_soc = sync_soc("lock", contenders=2, iterations=3)
        lock_soc.run_to_completion(max_cycles=400_000)
        excl_soc = sync_soc("excl", contenders=2, iterations=3)
        excl_soc.run_to_completion(max_cycles=400_000)
        lock_stalls = (
            lock_soc.fabric.total_lock_stall_cycles()
            + lock_soc.target_nius["sema"].lock_blocked_cycles
        )
        excl_stalls = (
            excl_soc.fabric.total_lock_stall_cycles()
            + excl_soc.target_nius["sema"].lock_blocked_cycles
        )
        assert lock_stalls > 0
        assert excl_stalls == 0
