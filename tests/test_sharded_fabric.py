"""Sharded fabric: conservative parallel simulation across processes.

The bar (ROADMAP PR 10): a build constructed with ``SocBuilder(shards=N)``
produces a byte-identical fingerprint whether it runs in one process or
as N shard workers exchanging boundary envelopes at safe-window barriers.
These tests pin that bar on the same GALS / VC / adaptive workloads the
kernel-determinism suite uses (tracing disabled — rejected for sharded
builds), plus the boundary adversary (wormholes mid-flight across a cut
at every barrier) and every ``ShardConfigError`` rejection path.
"""

import json

import pytest

import repro.core.transaction as txn_mod
import repro.transport.flit as flit_mod
from repro.ip.masters import cpu_workload, dma_workload, random_workload
from repro.sim.shard import ShardConfigError, ShardPlan, plan_shards
from repro.soc import (
    FaultSchedule,
    InitiatorSpec,
    LinkSpec,
    SocBuilder,
    TargetSpec,
)
from repro.sweep.parallel import run_sharded
from repro.transport import topology as topo


@pytest.fixture(autouse=True)
def _fresh_global_ids():
    """Shard workers and reference runs reset the process-global id
    counters; restore them so other tests stay byte-comparable."""
    txn_ids, packet_ids = txn_mod._txn_ids, flit_mod._flit_packet_ids
    yield
    txn_mod._txn_ids, flit_mod._flit_packet_ids = txn_ids, packet_ids


def canonical(fingerprint) -> str:
    """Byte-stable rendering: identical fingerprints, identical bytes."""
    return json.dumps(fingerprint, sort_keys=True)


RANGES = [(0, 0x2000), (0x2000, 0x2000)]

GALS_LINKS = {
    "router": LinkSpec(phit_bits=48, pipeline_latency=1),
    "endpoint": LinkSpec(phit_bits=96, sync_stages=3),
}


def _add_gals_endpoints(builder):
    """The heterogeneous initiator/target mix of the kernel-determinism
    GALS SoCs (regions span three clock domains)."""
    builder.add_initiator(
        InitiatorSpec(
            "cpu_ahb", "AHB",
            cpu_workload("cpu_ahb", RANGES, count=15, seed=1),
            region="cpu",
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "gpu_axi", "AXI",
            random_workload(
                "gpu_axi", RANGES, count=15, seed=2, tags=4, rate=0.3,
                burst_beats=(1, 4),
            ),
            protocol_kwargs={"id_count": 4},
        )
    )
    builder.add_initiator(
        InitiatorSpec(
            "acc_msg", "PROPRIETARY",
            dma_workload("acc_msg", base=0x1000, bytes_total=128),
        )
    )
    builder.add_target(
        TargetSpec("dram", size=0x2000, read_latency=6, write_latency=3,
                   region="io")
    )
    builder.add_target(
        TargetSpec("sram", size=0x2000, read_latency=2, write_latency=1,
                   region="cpu")
    )
    return builder


def build_sharded_gals(shards, **extra):
    """The GALS determinism SoC, sharded (trace disabled: rejected)."""
    builder = SocBuilder(
        shards=shards,
        links=GALS_LINKS,
        clock_domains={"cpu": 2, "io": (3, 1), "fab": 1},
        fabric_region="fab",
        **extra,
    )
    return _add_gals_endpoints(builder).build()


def build_sharded_vc_gals(shards):
    return build_sharded_gals(
        shards,
        topology=topo.torus(3, 3, endpoints=5),
        routing="dor",
        vcs=2,
        vc_policy="dateline",
    )


def build_sharded_adaptive_gals(shards):
    return build_sharded_gals(
        shards,
        topology=topo.torus(3, 3, endpoints=5),
        routing="adaptive",
        vcs=4,
    )


VARIANTS = {
    "gals": (build_sharded_gals, 3000),
    "vc": (build_sharded_vc_gals, 4000),
    "adaptive": (build_sharded_adaptive_gals, 4000),
}


# --------------------------------------------------------------------- #
# the determinism bar: N workers == one process, byte for byte
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("shards", [2, 4])
def test_sharded_fingerprint_matches_single_process(variant, shards):
    build, cycles = VARIANTS[variant]
    reference = run_sharded(
        lambda: build(shards), cycles=cycles, processes=0
    )
    parallel = run_sharded(
        lambda: build(shards), cycles=cycles, processes=shards
    )
    assert canonical(parallel["fingerprint"]) == canonical(
        reference["fingerprint"]
    )
    assert parallel["cycle"] == reference["cycle"] == cycles
    # The workload actually crossed the cuts — otherwise the test is
    # vacuous — and the round protocol did batch at barriers.
    assert parallel["timing"]["boundary_flits"] > 0
    assert parallel["timing"]["rounds"] > 1
    assert parallel["metrics"]["completed"] == reference["metrics"]["completed"]
    assert (
        parallel["metrics"]["flits_forwarded"]
        == reference["metrics"]["flits_forwarded"]
    )


def test_sharded_run_is_deterministic_across_repeats():
    build, cycles = VARIANTS["vc"]
    first = run_sharded(lambda: build(2), cycles=cycles, processes=2)
    second = run_sharded(lambda: build(2), cycles=cycles, processes=2)
    assert canonical(first["fingerprint"]) == canonical(second["fingerprint"])


# --------------------------------------------------------------------- #
# boundary adversary: wormholes mid-flight across the cut at barriers
# --------------------------------------------------------------------- #
def build_wormhole_adversary(shards=2):
    """A 2x1 mesh cut between its only two routers, narrow phits (many
    phits per flit, so serialization spans barriers), long bursts (many
    flits per wormhole, so packets are mid-flight across the cut at
    every exchange) and tiny buffers (credit backpressure is live)."""
    builder = SocBuilder(
        shards=shards,
        topology=topo.mesh(2, 1, endpoints=4),
        links={"router": LinkSpec(phit_bits=16, pipeline_latency=2)},
        buffer_capacity=2,
    )
    builder.add_initiator(InitiatorSpec(
        "cpu0", "AXI",
        random_workload("cpu0", RANGES, count=20, seed=7, rate=0.8,
                        burst_beats=(8, 8)),
        protocol_kwargs={"id_count": 2},
    ))
    builder.add_initiator(InitiatorSpec(
        "cpu1", "AHB", cpu_workload("cpu1", RANGES, count=20, seed=8),
    ))
    builder.add_target(TargetSpec(
        "dram", size=0x2000, read_latency=4, write_latency=2))
    builder.add_target(TargetSpec(
        "sram", size=0x2000, read_latency=1, write_latency=1))
    return builder.build()


def test_mid_wormhole_boundary_cut_is_exact():
    reference = run_sharded(build_wormhole_adversary, cycles=6000, processes=0)
    parallel = run_sharded(build_wormhole_adversary, cycles=6000, processes=2)
    assert canonical(parallel["fingerprint"]) == canonical(
        reference["fingerprint"]
    )
    # With 8-beat bursts over 16-bit phits the adversary must actually
    # stream multi-flit wormholes across the cut.
    assert parallel["timing"]["boundary_flits"] > 50
    assert parallel["metrics"]["completed"] > 0


# --------------------------------------------------------------------- #
# rejection paths: every unsupported combination fails loudly at build
# --------------------------------------------------------------------- #
def _minimal_builder(**kwargs):
    builder = SocBuilder(
        topology=topo.mesh(2, 1, endpoints=2),
        links={"router": LinkSpec(phit_bits=32, pipeline_latency=1)},
        **kwargs,
    )
    builder.add_initiator(InitiatorSpec(
        "cpu0", "AHB", cpu_workload("cpu0", RANGES, count=4, seed=1)))
    builder.add_target(TargetSpec(
        "mem", size=0x4000, read_latency=2, write_latency=1))
    return builder


def test_transparent_router_links_rejected():
    builder = _minimal_builder(shards=2)
    builder.links = None  # ideal wires: zero lookahead across the cut
    with pytest.raises(ShardConfigError, match="transparent"):
        builder.build()


def test_faults_with_shards_rejected():
    builder = _minimal_builder(
        shards=2,
        faults=FaultSchedule().link_down(100, (0, 0), (1, 0)),
    )
    with pytest.raises(ShardConfigError, match="fault injection"):
        builder.build()


def test_strict_kernel_with_shards_rejected():
    builder = _minimal_builder(shards=2, strict_kernel=True)
    with pytest.raises(ShardConfigError, match="strict"):
        builder.build()


def test_enabled_tracer_with_shards_rejected():
    from repro.sim.trace import Tracer

    builder = _minimal_builder(shards=2, trace=Tracer(enabled=True))
    with pytest.raises(ShardConfigError, match="trac"):
        builder.build()


def test_snapshot_of_sharded_build_rejected():
    soc = _minimal_builder(shards=2).build()
    with pytest.raises(ShardConfigError, match="snapshot"):
        soc.snapshot()


def test_run_sharded_requires_a_sharded_build():
    with pytest.raises(ShardConfigError, match="shards"):
        run_sharded(
            lambda: _minimal_builder().build(), cycles=100, processes=0
        )


def test_worker_count_must_match_shard_count():
    from repro.sweep.parallel import ShardWorkerError

    with pytest.raises((ShardConfigError, ShardWorkerError)):
        run_sharded(
            lambda: _minimal_builder(shards=2).build(),
            cycles=100,
            processes=3,
        )


# --------------------------------------------------------------------- #
# plans: auto-partitioner and explicit-plan validation
# --------------------------------------------------------------------- #
def test_plan_shards_balanced_stripes():
    topology = topo.mesh(4, 4, endpoints=16)
    plan = plan_shards(topology, 4)
    sizes = {}
    for router_id in topology.routers:
        sizes.setdefault(plan.shard_of(router_id), 0)
        sizes[plan.shard_of(router_id)] += 1
    assert sizes == {0: 4, 1: 4, 2: 4, 3: 4}
    # Column-major stripes on a mesh: each cut is one column of links.
    assert len(plan.cut_edges(topology)) == 3 * 4 * 2  # 3 cuts, 4 rows, 2 dirs


def test_plan_shards_rejects_degenerate_counts():
    topology = topo.mesh(2, 1, endpoints=2)
    with pytest.raises(ShardConfigError, match="at least 2"):
        plan_shards(topology, 1)
    with pytest.raises(ShardConfigError, match="cannot split"):
        plan_shards(topology, 3)


def test_explicit_plan_must_partition_the_topology():
    topology = topo.mesh(2, 1, endpoints=2)
    with pytest.raises(ShardConfigError, match="at least 2"):
        ShardPlan(assignment={(0, 0): 0, (1, 0): 0}, n_shards=1)
    incomplete = ShardPlan(assignment={(0, 0): 0}, n_shards=2)
    with pytest.raises(ShardConfigError, match="missing"):
        incomplete.validate(topology)
    lopsided = ShardPlan(
        assignment={(0, 0): 0, (1, 0): 0}, n_shards=2
    )
    with pytest.raises(ShardConfigError, match="empty"):
        lopsided.validate(topology)
    with pytest.raises(ShardConfigError, match="credit_return_latency"):
        ShardPlan(
            assignment={(0, 0): 0, (1, 0): 1},
            n_shards=2,
            credit_return_latency=0,
        )


def test_explicit_plan_drives_the_build():
    plan = ShardPlan(
        assignment={(0, 0): 1, (1, 0): 0}, n_shards=2,
        credit_return_latency=3,
    )
    soc = _minimal_builder(shards=plan).build()
    assert soc.shard_plan is plan
    reference = run_sharded(
        lambda: _minimal_builder(shards=plan).build(),
        cycles=2000, processes=0,
    )
    parallel = run_sharded(
        lambda: _minimal_builder(shards=plan).build(),
        cycles=2000, processes=2,
    )
    assert canonical(parallel["fingerprint"]) == canonical(
        reference["fingerprint"]
    )
