"""Initiator/target NIU integration over a real fabric.

One master + NIU + 2-target fabric, per protocol: data round-trips,
ordering delivery, DECERR default-slave behaviour, exclusive monitor and
lock handling at the target NIU.
"""

import pytest

from repro.core.transaction import (
    Opcode,
    Transaction,
    make_read,
    make_write,
)
from repro.ip.traffic import ScriptedTraffic
from repro.soc import InitiatorSpec, SocBuilder, TargetSpec


def build(protocol, intents, protocol_kwargs=None, targets=2, policy=None):
    builder = SocBuilder()
    builder.add_initiator(
        InitiatorSpec(
            "m0",
            protocol,
            ScriptedTraffic(intents),
            policy=policy,
            protocol_kwargs=protocol_kwargs or {},
        )
    )
    for i in range(targets):
        builder.add_target(TargetSpec(f"mem{i}", size=0x1000))
    return builder.build()


PROTOCOLS = [
    ("AHB", {}),
    ("AXI", {}),
    ("OCP", {"threads": 2}),
    ("PVCI", {}),
    ("BVCI", {}),
    ("AVCI", {}),
    ("PROPRIETARY", {}),
]


class TestDataRoundTrip:
    @pytest.mark.parametrize("protocol,kwargs", PROTOCOLS,
                             ids=[p for p, _ in PROTOCOLS])
    def test_write_then_read_back(self, protocol, kwargs):
        values = [0xDEADBEEF, 0x12345678, 0x0BADF00D, 0xCAFEF00D]
        intents = [make_write(0x100, values), make_read(0x100, beats=4)]
        soc = build(protocol, intents, kwargs)
        soc.run_to_completion(max_cycles=20_000)
        master = soc.masters["m0"]
        assert master.completed == 2
        assert soc.memories["mem0"].read_beat(0x100, 4) == 0xDEADBEEF
        assert master.checker.violations == []

    @pytest.mark.parametrize("protocol,kwargs", PROTOCOLS,
                             ids=[p for p, _ in PROTOCOLS])
    def test_cross_target_traffic(self, protocol, kwargs):
        intents = [
            make_write(0x0, [1]),
            make_write(0x1000, [2]),  # second target
            make_read(0x0),
            make_read(0x1000),
        ]
        soc = build(protocol, intents, kwargs)
        soc.run_to_completion(max_cycles=20_000)
        assert soc.masters["m0"].completed == 4
        assert soc.memories["mem0"].read_beat(0, 4) == 1
        assert soc.memories["mem1"].read_beat(0, 4) == 2


class TestDecodeErrors:
    def test_unmapped_address_gets_decerr_without_entering_fabric(self):
        soc = build("AXI", [make_read(0x9999_0000)])
        soc.run_to_completion(max_cycles=5_000)
        master = soc.masters["m0"]
        assert master.completed == 1
        assert master.errors == 1
        niu = soc.initiator_nius["m0"]
        assert niu.decode_errors == 1
        assert niu.requests_sent == 0  # never entered the fabric

    def test_posted_store_to_unmapped_dropped(self):
        soc = build("OCP", [make_write(0x9999_0000, [1], posted=True)],
                    {"threads": 1})
        soc.run_to_completion(max_cycles=5_000)
        assert soc.initiator_nius["m0"].decode_errors == 1

    def test_straddling_burst_rejected(self):
        # 4-beat burst starting 8 bytes before the end of mem0.
        soc = build("BVCI", [make_read(0x1000 - 8, beats=4)])
        soc.run_to_completion(max_cycles=5_000)
        assert soc.masters["m0"].errors == 1


class TestSlaveErrors:
    def test_error_range_propagates_slverr(self):
        builder = SocBuilder()
        builder.add_initiator(
            InitiatorSpec("m0", "AXI", ScriptedTraffic([make_read(0x80)]))
        )
        builder.add_target(
            TargetSpec("mem0", size=0x1000, error_ranges=[(0x80, 0x10)])
        )
        soc = builder.build()
        soc.run_to_completion(max_cycles=5_000)
        assert soc.masters["m0"].errors == 1


class TestExclusiveService:
    def _excl_pair(self):
        load = make_read(0x40)
        load.excl = True
        store = make_write(0x40, [7])
        store.excl = True
        return load, store

    def test_exclusive_pair_succeeds_uncontended(self):
        load, store = self._excl_pair()
        soc = build("AXI", [load, store])
        soc.run_to_completion(max_cycles=10_000)
        master = soc.masters["m0"]
        assert master.exokay == 2  # EXOKAY on load and store
        assert soc.memories["mem0"].read_beat(0x40, 4) == 7

    def test_exclusive_store_without_reservation_fails_and_skips_write(self):
        __, store = self._excl_pair()
        soc = build("AXI", [make_write(0x40, [1]), store])
        soc.run_to_completion(max_cycles=10_000)
        master = soc.masters["m0"]
        assert master.excl_failures == 1
        assert soc.memories["mem0"].read_beat(0x40, 4) == 1  # unchanged
        assert soc.target_nius["mem0"].excl_failures == 1

    def test_ocp_lazy_sync_maps_to_same_service(self):
        load, store = self._excl_pair()
        soc = build("OCP", [load, store], {"threads": 1})
        soc.run_to_completion(max_cycles=10_000)
        assert soc.masters["m0"].exokay >= 1  # WRC succeeded
        assert soc.memories["mem0"].read_beat(0x40, 4) == 7


class TestLockService:
    def test_ahb_locked_sequence(self):
        seq = [
            Transaction(opcode=Opcode.READEX, address=0x0),
            Transaction(opcode=Opcode.STORE_COND_LOCKED, address=0x0, data=[9]),
        ]
        soc = build("AHB", seq)
        soc.run_to_completion(max_cycles=10_000)
        assert soc.masters["m0"].completed == 2
        assert soc.memories["mem0"].read_beat(0, 4) == 9
        locks = soc.target_nius["mem0"].locks
        assert locks is not None and not locks.locked
        assert locks.acquisitions == 1


class TestOrderingDelivery:
    def test_conservative_policy_stalls_on_target_switch(self):
        from repro.core.ordering import OrderingModel
        from repro.niu.tag_policy import TagPolicy

        policy = TagPolicy(
            ordering=OrderingModel.FULLY_ORDERED,
            max_outstanding=4,
            per_stream_outstanding=4,
            multi_target=False,
        )
        intents = [make_read(0x0), make_read(0x1000), make_read(0x0)]
        soc = build("BVCI", intents, policy=policy)
        soc.run_to_completion(max_cycles=10_000)
        master = soc.masters["m0"]
        assert master.completed == 3
        assert master.checker.violations == []

    def test_multi_target_policy_reorders_internally(self):
        """Fast target's response returns first, but the NIU still
        delivers in stream order (reorder-buffer behaviour)."""
        builder = SocBuilder()
        intents = [make_read(0x0), make_read(0x1000)]  # slow then fast
        builder.add_initiator(
            InitiatorSpec("m0", "BVCI", ScriptedTraffic(intents))
        )
        builder.add_target(TargetSpec("slow", size=0x1000, read_latency=40))
        builder.add_target(TargetSpec("fast", size=0x1000, read_latency=1))
        soc = builder.build()
        soc.run_to_completion(max_cycles=20_000)
        master = soc.masters["m0"]
        assert master.completed == 2
        assert master.checker.violations == []  # in-order at the socket

    def test_axi_out_of_order_across_ids(self):
        """Different AXI IDs to targets of very different speeds complete
        out of order at the socket — legally."""
        builder = SocBuilder()
        slow_read = make_read(0x0)
        slow_read.txn_tag = 0
        fast_read = make_read(0x1000)
        fast_read.txn_tag = 1
        builder.add_initiator(
            InitiatorSpec("m0", "AXI", ScriptedTraffic([slow_read, fast_read]))
        )
        builder.add_target(TargetSpec("slow", size=0x1000, read_latency=60))
        builder.add_target(TargetSpec("fast", size=0x1000, read_latency=1))
        soc = builder.build()
        soc.run_to_completion(max_cycles=20_000)
        traffic = soc.masters["m0"].traffic
        completion_order = [txn_id for txn_id, __, __ in traffic.completions]
        assert completion_order == [fast_read.txn_id, slow_read.txn_id]


class TestNiuAccounting:
    def test_state_table_watermark_bounded_by_policy(self):
        intents = [make_read(0x10 * i) for i in range(20)]
        soc = build("BVCI", intents)
        soc.run_to_completion(max_cycles=20_000)
        niu = soc.initiator_nius["m0"]
        assert niu.table.high_watermark <= niu.policy.max_outstanding
        assert niu.requests_sent == 20
        assert niu.responses_delivered == 20

    def test_posted_stores_bypass_state_table(self):
        intents = [make_write(0x10 * i, [i], posted=True) for i in range(5)]
        soc = build("OCP", intents, {"threads": 1})
        soc.run_to_completion(max_cycles=20_000)
        niu = soc.initiator_nius["m0"]
        assert niu.posted_sent == 5
        assert niu.table.total_allocated == 0
        assert soc.target_nius["mem0"].posted_served == 5
