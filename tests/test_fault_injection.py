"""Fault injection, degraded-mode routing, and partition detection (PR 6).

The tentpole surface: build-time `FaultSchedule` validation with named
errors, adaptive reroute around a mid-run link failure (with
``packets_rerouted``/``faults_hit`` stats and in-flight-phit accounting),
full-heal restoration of the pristine tables, `FabricPartitionError`
within the watchdog budget on deterministic planes and true partitions,
and the per-flow latency percentiles that measure degraded mode.
"""

import itertools

import pytest

import repro.core.transaction as txn_mod
import repro.transport.flit as flit_mod
from repro.core.packet import NocPacket, PacketKind
from repro.core.transaction import Opcode
from repro.ip.masters import random_workload
from repro.phys.link import LinkSpec
from repro.sim.kernel import SimulationError, Simulator
from repro.soc import (
    FabricPartitionError,
    FaultSchedule,
    InitiatorSpec,
    SocBuilder,
    TargetSpec,
)
from repro.transport import topology as topo
from repro.transport.faults import (
    FaultConfigError,
    NoSurvivingPathError,
    OverlappingFaultWindowError,
    UnknownFaultTargetError,
    compute_degraded_tables,
    unreachable_endpoint_pairs,
)
from repro.transport.network import Network
from repro.transport.routing import port_local, port_to


@pytest.fixture(autouse=True)
def _fresh_global_ids():
    txn_mod._txn_ids = itertools.count()
    flit_mod._flit_packet_ids = itertools.count()
    yield


def request(slv, mst, opcode=Opcode.LOAD, beats=1, priority=0, txn_id=-1,
            payload=None):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=opcode,
        slv_addr=slv,
        mst_addr=mst,
        tag=0,
        beats=beats,
        payload=payload,
        priority=priority,
        txn_id=txn_id,
    )


def build_soc(strict=False, faults=None, routing="adaptive", count=40):
    """6 AXI masters on row 0/1 of a 4x4 torus + dram/sram targets.

    Targets land on endpoints 6 (router (2, 1)) and 7 (router (3, 1)),
    so cutting link (1, 1)--(2, 1) leaves router (1, 1) — which hosts
    master m5 — with no healthy-minimal neighbour toward dram: every
    surviving candidate is a genuine detour (``packets_rerouted``).
    """
    ranges = [(0, 0x2000), (0x2000, 0x2000)]
    kw = {"vcs": 4} if routing == "adaptive" else {}
    builder = SocBuilder(
        strict_kernel=strict,
        topology=topo.torus(4, 4, endpoints=16),
        routing=routing,
        faults=faults,
        **kw,
    )
    for i in range(6):
        builder.add_initiator(InitiatorSpec(
            f"m{i}", "AXI",
            random_workload(f"m{i}", ranges, count=count, seed=i, tags=4,
                            rate=0.5, burst_beats=(1, 4)),
            protocol_kwargs={"id_count": 4},
        ))
    builder.add_target(TargetSpec("dram", size=0x2000, read_latency=6,
                                  write_latency=3))
    builder.add_target(TargetSpec("sram", size=0x2000, read_latency=2,
                                  write_latency=1))
    return builder.build()


def plane_routers(soc):
    return [r for plane in soc.fabric._planes for r in plane.routers.values()]


# ---------------------------------------------------------------------- #
# build-time schedule validation: named errors
# ---------------------------------------------------------------------- #
class TestScheduleValidation:
    def _torus(self):
        return topo.torus(4, 4)

    def test_unknown_link_target(self):
        sched = FaultSchedule().link_down(10, (0, 0), (2, 2))  # not adjacent
        with pytest.raises(UnknownFaultTargetError):
            sched.validate(self._torus())

    def test_unknown_router(self):
        sched = FaultSchedule().port_down(10, (9, 9), "to:(0, 0)")
        with pytest.raises(UnknownFaultTargetError):
            sched.validate(self._torus())

    def test_unknown_port(self):
        sched = FaultSchedule().port_down(10, (0, 0), "to:(2, 2)")
        with pytest.raises(UnknownFaultTargetError):
            sched.validate(self._torus())

    def test_double_down_overlaps(self):
        sched = (FaultSchedule()
                 .link_down(10, (0, 0), (1, 0))
                 .link_down(20, (0, 0), (1, 0)))
        with pytest.raises(OverlappingFaultWindowError):
            sched.validate(self._torus())

    def test_up_without_down(self):
        sched = FaultSchedule().link_up(10, (0, 0), (1, 0))
        with pytest.raises(OverlappingFaultWindowError):
            sched.validate(self._torus())

    def test_empty_window(self):
        sched = (FaultSchedule()
                 .link_down(10, (0, 0), (1, 0))
                 .link_up(10, (0, 0), (1, 0)))
        with pytest.raises(OverlappingFaultWindowError):
            sched.validate(self._torus())

    def test_disconnecting_schedule_is_rejected(self):
        # All four links of router (0, 0) down: endpoint 0 is stranded.
        t = self._torus()
        sched = FaultSchedule()
        for n in t.neighbors((0, 0)):
            sched.link_down(10, (0, 0), n)
        with pytest.raises(NoSurvivingPathError):
            sched.validate(t)

    def test_allow_partition_downgrades_to_runtime(self):
        t = self._torus()
        sched = FaultSchedule(allow_partition=True)
        for n in t.neighbors((0, 0)):
            sched.link_down(10, (0, 0), n)
        sched.validate(t)  # must not raise

    def test_named_errors_are_fault_config_errors(self):
        for err in (UnknownFaultTargetError, OverlappingFaultWindowError,
                    NoSurvivingPathError):
            assert issubclass(err, FaultConfigError)
        assert issubclass(FaultConfigError, ValueError)
        assert issubclass(FabricPartitionError, SimulationError)

    def test_negative_cycle_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule().link_down(-1, (0, 0), (1, 0))

    def test_bad_budget_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule(partition_budget=0)

    def test_validation_runs_at_soc_build(self):
        with pytest.raises(UnknownFaultTargetError):
            build_soc(faults=FaultSchedule().link_down(10, (0, 0), (2, 2)))


# ---------------------------------------------------------------------- #
# LinkSpec fault windows
# ---------------------------------------------------------------------- #
class TestLinkSpecWindows:
    def test_windows_validated_at_spec_construction(self):
        with pytest.raises(ValueError):
            LinkSpec(fault_windows=((10, 10),))  # empty window
        with pytest.raises(ValueError):
            LinkSpec(fault_windows=((-5, 10),))
        with pytest.raises(ValueError):
            LinkSpec(fault_windows=((10, 50), (40, 80)))  # overlap

    def test_windows_normalize_to_tuples(self):
        spec = LinkSpec(fault_windows=[[10, 50], (100, 200)])
        assert spec.fault_windows == ((10, 50), (100, 200))

    def test_endpoint_links_not_faultable(self):
        with pytest.raises(FaultConfigError):
            Network(
                Simulator(),
                topo.ring(4),
                routing="dor",
                vcs=2,
                vc_policy="dateline",
                endpoint_link_spec=LinkSpec(fault_windows=((10, 50),)),
            )

    def test_windows_expand_to_every_inter_router_link(self):
        t = topo.ring(4)
        net = Network(
            Simulator(), t, routing="dor", vcs=2, vc_policy="dateline",
            link_spec=LinkSpec(fault_windows=((10_000, 20_000),)),
        )
        assert net.fault_injector is not None
        events = net.fault_injector.schedule.events
        # one down + one up per undirected edge
        assert len(events) == 2 * len(t.graph.edges)


# ---------------------------------------------------------------------- #
# degraded-table recomputation (unit level)
# ---------------------------------------------------------------------- #
class TestDegradedTables:
    def test_cut_link_drops_dead_candidates(self):
        t = topo.torus(4, 4)
        down = {((1, 1), (2, 1)), ((2, 1), (1, 1))}
        tables, unroutable = compute_degraded_tables(t, down, set())
        assert not unroutable  # torus minus one link stays connected
        # endpoint 6 homes at (2, 1); from (1, 1) the dead port is gone
        # and the surviving candidates are genuine detours.
        cands = tables[(1, 1)].outputs(6)
        assert cands and port_to((2, 1)) not in cands
        assert tables[(1, 1)].escape_port(6) in cands

    def test_escape_preserved_away_from_fault(self):
        from repro.transport.routing import compute_adaptive_tables
        t = topo.torus(4, 4)
        healthy = compute_adaptive_tables(t)
        down = {((1, 1), (2, 1)), ((2, 1), (1, 1))}
        tables, _ = compute_degraded_tables(
            t, down, set(),
            healthy_escape={r: tbl.escape for r, tbl in healthy.items()},
        )
        # Router (3, 3) is far from the cut: its DOR escape ports survive
        # and stay minimal, so the healthy escape entries are kept.
        for endpoint in t.endpoints:
            if t.router_of(endpoint) == (3, 3):
                continue
            assert (tables[(3, 3)].escape_port(endpoint)
                    == healthy[(3, 3)].escape_port(endpoint))

    def test_dead_local_port_strands_endpoint(self):
        t = topo.torus(4, 4)
        home = t.router_of(5)
        _, unroutable = compute_degraded_tables(
            t, set(), {(home, port_local(5))}
        )
        for router in t.routers:
            assert 5 in unroutable[router]

    def test_unreachable_pairs_on_isolated_router(self):
        t = topo.torus(4, 4)
        down = set()
        for n in t.neighbors((0, 0)):
            down.add(((0, 0), n))
            down.add((n, (0, 0)))
        stranded = unreachable_endpoint_pairs(t, down, set())
        # endpoint 0 homes at (0, 0): unreachable both ways
        assert (1, 0) in stranded and (0, 1) in stranded


# ---------------------------------------------------------------------- #
# the headline: reroute around a mid-run link failure (ISSUE 6 acceptance)
# ---------------------------------------------------------------------- #
class TestAdaptiveReroute:
    CUT = ((1, 1), (2, 1))

    def test_mid_run_cut_completes_with_reroutes(self):
        soc = build_soc(faults=FaultSchedule().link_down(60, *self.CUT))
        soc.run_to_completion()
        assert soc.total_completed() == 240
        assert soc.ordering_violations() == 0
        assert all(m.finished() for m in soc.masters.values())
        routers = plane_routers(soc)
        assert sum(r.faults_hit for r in routers) > 0
        assert sum(r.packets_rerouted for r in routers) > 0
        injector = soc.fabric.request_plane.fault_injector
        assert [(c, ev.down) for c, ev in injector.applied] == [(60, True)]

    def test_heal_restores_pristine_tables(self):
        faults = (FaultSchedule()
                  .link_down(60, *self.CUT)
                  .link_up(400, *self.CUT))
        soc = build_soc(faults=faults, count=80)
        soc.run_to_completion()
        assert soc.total_completed() == 480
        assert soc.ordering_violations() == 0
        for plane in soc.fabric._planes:
            assert plane.fault_injector is not None
            assert not plane.fault_injector.down_links
            for rid, router in plane.routers.items():
                # full heal: back on the pristine DOR-escape tables, not
                # the BFS-canonical degraded recompute
                assert router.adaptive_table is plane._adaptive_tables[rid]
                assert not router._dead_ports

    def test_throughput_retention_at_least_half(self):
        healthy = build_soc()
        healthy_cycles = healthy.run_to_completion()
        degraded = build_soc(faults=FaultSchedule().link_down(60, *self.CUT))
        degraded_cycles = degraded.run_to_completion()
        assert degraded.total_completed() == healthy.total_completed()
        retention = healthy_cycles / degraded_cycles
        assert retention >= 0.5, (
            f"degraded throughput retention {retention:.2f} < 0.5 "
            f"({healthy_cycles} healthy vs {degraded_cycles} faulted cycles)"
        )


# ---------------------------------------------------------------------- #
# partition detection: loud, named, bounded
# ---------------------------------------------------------------------- #
class TestPartitionDetection:
    def test_dor_plane_detects_unroutable_destination(self):
        # The very schedule the adaptive plane routes around: on the
        # deterministic plane (tables kept) the cut makes dram
        # unroutable from m5's router, so the watchdog must raise the
        # named error within its budget, not wedge.
        faults = FaultSchedule(partition_budget=256).link_down(
            60, *TestAdaptiveReroute.CUT
        )
        soc = build_soc(faults=faults, routing="dor")
        with pytest.raises(FabricPartitionError) as exc:
            soc.run_to_completion(max_cycles=100_000)
        # bounded: fault at 60, budget 256, detection within a couple of
        # watchdog periods (re-arm happens only while nothing is provably
        # stuck yet)
        assert soc.sim.cycle <= 60 + 4 * 256
        assert "unreachable" in str(exc.value)

    def test_true_partition_detected_on_adaptive_plane(self):
        # Isolate router (2, 1) (home of dram, endpoint 6) entirely; the
        # build-time check is explicitly waived so the runtime watchdog
        # is what stands between the user and a silent wedge.
        t = topo.torus(4, 4, endpoints=16)
        faults = FaultSchedule(partition_budget=256, allow_partition=True)
        for n in t.neighbors((2, 1)):
            faults.link_down(60, (2, 1), n)
        soc = build_soc(faults=faults)
        with pytest.raises(FabricPartitionError):
            soc.run_to_completion(max_cycles=100_000)
        assert soc.sim.cycle <= 60 + 4 * 256

    def test_partition_error_is_catchable_as_simulation_error(self):
        faults = FaultSchedule(partition_budget=128).link_down(
            60, *TestAdaptiveReroute.CUT
        )
        soc = build_soc(faults=faults, routing="dor")
        with pytest.raises(SimulationError):
            soc.run_to_completion(max_cycles=100_000)


# ---------------------------------------------------------------------- #
# watchdog parking: idle degraded fabrics skip again (PR 7)
# ---------------------------------------------------------------------- #
class TestWatchdogParking:
    def _net(self, sim, faults):
        return Network(sim, topo.ring(4), routing="adaptive", vcs=3,
                       faults=faults)

    def test_parks_when_drained_and_rearms_on_injection(self):
        # Permanent (never healed) cut on a still-connected ring: the
        # fabric is degraded forever.  Pre-PR-7 the watchdog re-armed
        # every partition_budget cycles even with nothing in flight,
        # pinning the event wheel awake for the rest of the run.
        sim = Simulator()
        net = self._net(
            sim, FaultSchedule(partition_budget=64).link_down(6, 0, 1)
        )
        net.inject(0, request(1, 0, txn_id=1))
        received = []

        def pump():
            queue = net.ejected(1)
            while queue:
                received.append(queue.pop())
            return bool(received)

        sim.run_until(pump, max_cycles=5000)
        injector = net.fault_injector
        sim.run(2 * injector.budget + 8)
        # drained + no heal pending -> parked, idle, wheel-skippable
        assert injector._parked and injector._deadline is None
        assert injector.is_idle()
        skipped = sim.cycles_skipped
        sim.run(5000)
        assert sim.cycles_skipped - skipped >= 4000
        # new traffic re-arms the watchdog from the injection wake path
        received.clear()
        net.inject(0, request(1, 0, txn_id=2))
        sim.run(8)
        assert not injector._parked and injector._deadline is not None
        sim.run_until(pump, max_cycles=5000)
        assert received[0].txn_id == 2

    def test_rearmed_watchdog_still_detects_partition(self):
        # Isolate router 2 with no traffic at all: the watchdog's first
        # deadline finds nothing stuck and parks.  A packet injected
        # toward the stranded endpoint must wake it back up and still
        # produce the loud, bounded partition error.
        sim = Simulator()
        faults = FaultSchedule(partition_budget=64, allow_partition=True)
        faults.link_down(6, 1, 2).link_down(6, 2, 3)
        net = self._net(sim, faults)
        sim.run(200)
        injector = net.fault_injector
        assert injector._parked and injector.is_idle()
        net.inject(0, request(2, 0, txn_id=7))
        with pytest.raises(FabricPartitionError):
            sim.run(4 * injector.budget)
        assert not injector._parked


# ---------------------------------------------------------------------- #
# in-flight phit accounting at a cut (drain semantics)
# ---------------------------------------------------------------------- #
class TestInFlightAccounting:
    def test_cut_mid_stream_drains_and_accounts(self):
        # Pipelined links so phits are genuinely in flight mid-wire;
        # ring(4) stays connected with one link down (the long way
        # around), so everything must still deliver.
        sim = Simulator()
        t = topo.ring(4)
        net = Network(
            sim, t, routing="adaptive", vcs=3,
            link_spec=LinkSpec(phit_bits=64, pipeline_latency=2),
            faults=FaultSchedule().link_down(6, 0, 1),
        )
        # Long store 0 -> 1: the head wins "to:1" and is streaming when
        # the cut at cycle 6 lands.
        net.inject(0, request(1, 0, opcode=Opcode.STORE, beats=16,
                              payload=[0] * 16, txn_id=1))
        received = []

        def pump():
            queue = net.ejected(1)
            while queue:
                received.append(queue.pop())
            return len(received) >= 1

        sim.run_until(pump, max_cycles=5000)
        assert received[0].txn_id == 1  # drained across the cut, not lost
        cut_stat = sim.stats.counter("net.faults.phits_in_flight_at_cut")
        assert cut_stat.value > 0

    def test_transparent_links_account_zero(self):
        sim = Simulator()
        net = Network(
            sim, topo.ring(4), routing="adaptive", vcs=3,
            faults=FaultSchedule().link_down(2, 0, 1),
        )
        sim.run(10)
        assert net.fault_injector.applied
        # ideal wires: the "link" is the downstream buffer, nothing is
        # ever mid-wire
        assert sim.stats.counter("net.faults.phits_in_flight_at_cut").value == 0


# ---------------------------------------------------------------------- #
# degraded-mode measurement: per-flow latency percentiles
# ---------------------------------------------------------------------- #
class TestFlowStats:
    def test_percentiles_per_priority_and_pair(self):
        soc = build_soc(count=20)
        soc.run_to_completion()
        flows = soc.flow_stats()
        assert set(flows) == {"request", "response"}
        for plane in flows.values():
            assert plane["priority"], "per-priority histograms missing"
            assert plane["pairs"], "per-pair histograms missing"
            for summary in plane["priority"].values():
                for key in ("p50", "p99", "p999", "count", "max"):
                    assert key in summary
                assert summary["p50"] <= summary["p99"] <= summary["p999"]

    def test_pair_flows_are_src_dst_labelled(self):
        soc = build_soc(count=20)
        soc.run_to_completion()
        pairs = soc.flow_stats()["request"]["pairs"]
        # every request pair ends at a target endpoint (6 = dram, 7 = sram)
        for label in pairs:
            src, dst = label.split("->")
            assert int(dst) in (6, 7) and 0 <= int(src) < 6
