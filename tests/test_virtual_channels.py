"""Virtual channels: deadlock freedom, QoS isolation, VC links, wiring.

The transport layer's VC machinery (PR 3): per-input-per-VC buffers with
a VC-allocation stage in the router, per-VC link wiring through the
LinkSpec machinery (``VcPhysicalLink`` time-multiplexing VCs over one
physical channel with per-VC credits), the dateline VC policy that makes
ring/torus wormhole fabrics deadlock-free with 2 VCs, and the
request/response VC-separation fabric mode.
"""

import pytest

from repro.core.packet import NocPacket, PacketKind
from repro.core.transaction import Opcode
from repro.phys.link import LinkSpec, VcPhysicalLink
from repro.sim.kernel import SimulationError, Simulator
from repro.transport import topology as topo
from repro.transport.flit import Flit
from repro.transport.network import BufferSizingError, Fabric, KindVcPolicy, Network
from repro.transport.routing import (
    DatelineVcPolicy,
    PriorityVcPolicy,
    RoutingError,
    VcPolicy,
    compute_dor_tables,
    make_vc_policy,
)
from repro.transport.switching import SwitchingMode


def request(slv, mst, opcode=Opcode.LOAD, beats=1, priority=0, txn_id=-1,
            payload=None):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=opcode,
        slv_addr=slv,
        mst_addr=mst,
        tag=0,
        beats=beats,
        payload=payload,
        priority=priority,
        txn_id=txn_id,
    )


def pump_all(sim, net, endpoints, expected, max_cycles):
    received = []

    def pump():
        for ep in endpoints:
            queue = net.ejected(ep)
            while queue:
                received.append(queue.pop())
        return len(received) >= expected

    sim.run_until(pump, max_cycles=max_cycles)
    return received


# ---------------------------------------------------------------------- #
# the headline: dateline VCs make wraparound wormhole deadlock-free
# ---------------------------------------------------------------------- #
class TestDatelineDeadlockFreedom:
    """Seeded ring workload that deadlocks under single-VC wormhole and
    completes with 2 VCs + the dateline policy (ISSUE 3 acceptance)."""

    def _build_ring(self, vcs, policy):
        sim = Simulator()
        net = Network(
            sim,
            topo.ring(4),
            routing="dor",
            buffer_capacity=2,
            vcs=vcs,
            vc_policy=policy,
            endpoint_queue_capacity=2,
        )
        return sim, net

    def _inject_cycle_of_waits(self, net):
        # Every endpoint sends a long packet two hops clockwise at once:
        # each packet holds its first link while waiting for the next,
        # and the four waits close a cycle around the ring.
        for src in range(4):
            net.inject(
                src,
                request((src + 2) % 4, src, opcode=Opcode.STORE, beats=16,
                        payload=[0] * 16, txn_id=src),
            )

    def test_single_vc_wormhole_deadlocks(self):
        sim, net = self._build_ring(1, None)
        self._inject_cycle_of_waits(net)
        with pytest.raises(SimulationError):
            pump_all(sim, net, range(4), 4, max_cycles=3000)
        # True deadlock, not slowness: no flit moves ever again.
        frozen = net.total_flits_forwarded()
        sim.run(300)
        assert net.total_flits_forwarded() == frozen

    def test_two_vcs_dateline_completes(self):
        sim, net = self._build_ring(2, "dateline")
        self._inject_cycle_of_waits(net)
        got = pump_all(sim, net, range(4), 4, max_cycles=3000)
        assert sorted(p.txn_id for p in got) == [0, 1, 2, 3]
        sim.run(20)
        assert net.idle()
        assert sim.active_count == 0  # wake protocol: VC fabric retires

    def test_torus_all_pairs_dor_dateline(self):
        sim = Simulator()
        t = topo.torus(4, 4)
        net = Network(sim, t, routing="dor", vcs=2, vc_policy="dateline",
                      buffer_capacity=4)
        eps = t.endpoints
        pairs = [(s, d) for s in eps for d in eps if s != d]
        received = []

        def pump():
            while pairs and net.can_inject(pairs[0][0]):
                src, dst = pairs.pop(0)
                net.inject(src, request(dst, src, opcode=Opcode.STORE,
                                        beats=8, payload=[0] * 8,
                                        txn_id=src * 100 + dst))
            for ep in eps:
                queue = net.ejected(ep)
                while queue:
                    received.append(queue.pop())
            return not pairs and len(received) >= 240

        sim.run_until(pump, max_cycles=120_000)
        assert len(received) == 240

    def test_dor_rejects_topology_without_wraparound(self):
        with pytest.raises(RoutingError):
            compute_dor_tables(topo.mesh(4, 4))


class TestDatelinePolicyUnit:
    def test_ring_hops(self):
        policy = DatelineVcPolicy()
        # plain hop keeps class; wraparound edge promotes to VC 1
        assert policy.output_vc(1, 0, 2, 0, 2) == 0
        assert policy.output_vc(3, 2, 0, 0, 2) == 1  # dateline 3 -> 0
        assert policy.output_vc(0, 3, 1, 1, 2) == 1  # stays promoted
        assert policy.output_vc(0, None, 1, 0, 2) == 0  # injection hop

    def test_torus_dimension_change_resets_class(self):
        policy = DatelineVcPolicy()
        # X wraparound promotes...
        assert policy.output_vc((3, 1), (2, 1), (0, 1), 0, 2) == 1
        # ...but turning into Y starts that dimension's ring on VC 0.
        assert policy.output_vc((0, 1), (3, 1), (0, 2), 1, 2) == 0
        # Y wraparound promotes again.
        assert policy.output_vc((0, 3), (0, 2), (0, 0), 0, 2) == 1

    def test_ejection_keeps_class(self):
        policy = DatelineVcPolicy()
        assert policy.output_vc(2, 1, None, 1, 2) == 1

    def test_needs_two_vcs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, topo.ring(4), routing="dor", vcs=1,
                    vc_policy="dateline")

    def test_factory(self):
        assert isinstance(make_vc_policy(None), VcPolicy)
        assert isinstance(make_vc_policy("dateline"), DatelineVcPolicy)
        assert isinstance(make_vc_policy("priority"), PriorityVcPolicy)
        policy = DatelineVcPolicy()
        assert make_vc_policy(policy) is policy
        with pytest.raises(KeyError):
            make_vc_policy("nope")


# ---------------------------------------------------------------------- #
# QoS isolation: per-VC buffers defeat head-of-line blocking
# ---------------------------------------------------------------------- #
class TestQosIsolation:
    def _hol_scenario(self, vcs, policy):
        """Two flows share the single channel between two routers:
        best-effort traffic from endpoint 0 towards a destination that
        never drains, and one high-priority packet from endpoint 1 to a
        live destination.  With one VC the wedged best-effort packet
        owns the shared channel (wormhole) and the urgent packet stalls
        behind it; with priority-mapped VCs it rides its own buffer
        through the same ports and overtakes."""
        sim = Simulator()
        topology = topo.custom([(0, 1)], {0: 0, 1: 0, 2: 1, 3: 1},
                               name="two-routers")
        net = Network(sim, topology, vcs=vcs, vc_policy=policy,
                      buffer_capacity=2, endpoint_queue_capacity=2)
        for i in range(4):  # clog the path to endpoint 2 (never popped)
            sim.run_until(lambda: net.can_inject(0), max_cycles=2000)
            net.inject(0, request(2, 0, opcode=Opcode.STORE, beats=32,
                                  payload=[0] * 32, priority=0, txn_id=i))
        sim.run(100)  # wedge the shared router->router channel
        net.inject(1, request(3, 1, priority=1, txn_id=99))
        sim.run(300)
        return [p.txn_id for p in net.ejected(3).drain()]

    def test_single_vc_head_of_line_blocks(self):
        assert self._hol_scenario(1, None) == []

    def test_priority_vc_overtakes(self):
        assert self._hol_scenario(2, "priority") == [99]


# ---------------------------------------------------------------------- #
# VC-multiplexed physical links
# ---------------------------------------------------------------------- #
class TestVcPhysicalLink:
    def _make_link(self, sim, vcs=2, capacity=2, **kwargs):
        ups = [sim.new_queue(f"up{v}", capacity=4) for v in range(vcs)]
        downs = [sim.new_queue(f"down{v}", capacity=capacity) for v in range(vcs)]
        link = VcPhysicalLink("lnk", ups, downs, flit_bits=96, phit_bits=48,
                              **kwargs)
        sim.add(link)
        return ups, downs, link

    @staticmethod
    def _flit(vc, seq=0, count=1):
        return Flit(packet_id=vc * 100 + seq, seq=seq, count=count, dest=0,
                    src=0, priority=0, lock_related=False, vc=vc)

    def test_blocked_vc_does_not_block_the_other(self):
        sim = Simulator()
        ups, downs, link = self._make_link(sim, capacity=2)
        # Nothing ever pops down0: VC 0 exhausts its 2 credits and stalls.
        for i in range(4):
            ups[0].push(self._flit(0, seq=i, count=4))
        for i in range(4):
            ups[1].push(self._flit(1, seq=i, count=4))
        arrived_vc1 = 0
        for _ in range(30):  # drain VC 1 as a live consumer would
            sim.run(2)
            arrived_vc1 += len(downs[1].drain())
        assert arrived_vc1 == 4  # VC 1 flowed past the stalled VC 0
        assert len(downs[0]) == 2  # capacity reached, wires released
        assert len(ups[0]) == 2  # rest still staged upstream
        credit0 = link.credits[0]
        assert credit0.available == 0 and credit0.outstanding == 2

    def test_credits_return_when_consumer_drains(self):
        sim = Simulator()
        ups, downs, link = self._make_link(sim, capacity=2)
        for i in range(4):
            ups[0].push(self._flit(0, seq=i, count=4))
        sim.run(60)
        assert len(downs[0]) == 2
        downs[0].drain()
        sim.run(60)
        assert len(downs[0]) == 2  # the remaining two flits came through
        downs[0].drain()
        sim.run(20)
        credit = link.credits[0]
        assert credit.available == credit.capacity
        assert credit.total_consumed == credit.total_returned == 4
        assert link.is_idle() and link.in_flight == 0
        assert link.flits_per_vc[0] == 4 and link.phits_carried == 8

    def test_serialized_vc_ring_delivers_and_drains(self):
        sim = Simulator()
        net = Network(sim, topo.ring(4), routing="dor", vcs=2,
                      vc_policy="dateline",
                      link_spec=LinkSpec(phit_bits=48, pipeline_latency=1),
                      endpoint_link_spec=LinkSpec(phit_bits=96))
        for src in range(4):
            net.inject(src, request((src + 2) % 4, src, opcode=Opcode.STORE,
                                    beats=16, payload=[0] * 16, txn_id=src))
        got = pump_all(sim, net, range(4), 4, max_cycles=20_000)
        assert sorted(p.txn_id for p in got) == [0, 1, 2, 3]
        assert all(isinstance(link, VcPhysicalLink) for link in net.links)
        assert sum(link.phits_carried for link in net.links) > 0
        for link in net.links:
            for credit in link.credits:
                assert credit.total_consumed == (
                    credit.total_returned + credit.outstanding
                )
        sim.run(50)
        assert net.idle()
        assert sim.active_count == 0

    def test_unbounded_delivery_queue_rejected(self):
        sim = Simulator()
        up = sim.new_queue("u", capacity=4)
        down = sim.new_queue("d", capacity=None)
        with pytest.raises(ValueError):
            VcPhysicalLink("bad", [up], [down])

    def test_slow_credit_return_does_not_double_count(self):
        """With credit_return_latency >= 2 the reconcile loop used to
        re-return credits already in the return pipeline on every
        producer edge before maturation, overflowing the counter when
        traffic resumed."""
        sim = Simulator()
        ups, downs, link = self._make_link(sim, vcs=1, capacity=2,
                                           credit_return_latency=3)
        for burst in range(3):
            for i in range(2):
                ups[0].push(self._flit(0, seq=burst * 2 + i, count=6))
            for _ in range(20):  # drain as a live consumer, credits loop
                sim.run(1)
                downs[0].drain()
        sim.run(20)
        credit = link.credits[0]
        assert credit.available == credit.capacity
        assert credit.in_return_loop == 0
        assert credit.total_consumed == credit.total_returned == 6
        assert link.is_idle()


# ---------------------------------------------------------------------- #
# vcs=1 stays the historical fabric
# ---------------------------------------------------------------------- #
class TestSingleVcCompatibility:
    def test_default_build_keeps_queue_names(self):
        """vcs=1 (the default) must wire the exact same queues as the
        pre-VC fabric: historical names, no .vc suffixes anywhere."""
        sim = Simulator()
        Fabric(sim, topo.mesh(2, 2))
        names = set(sim._queue_names)
        assert "noc.req.link.(0, 0)->(0, 1)" in names
        assert "noc.req.inj.0.pkts" in names
        assert "noc.req.ej.0.pkts" in names
        assert not any(".vc" in name for name in names)

    def test_vc_build_adds_per_vc_queues(self):
        sim = Simulator()
        Fabric(sim, topo.mesh(2, 2), vcs=2)
        names = set(sim._queue_names)
        assert "noc.req.link.(0, 0)->(0, 1)" in names  # VC 0 keeps the name
        assert "noc.req.link.(0, 0)->(0, 1).vc1" in names

    def test_router_port_order_is_canonical_on_wide_fabrics(self):
        """The router's own port iteration (and hence first-contest
        arbitration order) uses the canonical router key, not the port
        name string: 'in:(1, 9)' must come before 'in:(1, 11)' even
        though the strings sort the other way."""
        sim = Simulator()
        net = Network(sim, topo.mesh(2, 12))
        router = net.routers[(1, 10)]
        in_ports = [key[0] for key, _q in router._sorted_inputs]
        assert in_ports.index("in:(1, 9)") < in_ports.index("in:(1, 11)")
        assert in_ports.index("in:(0, 10)") < in_ports.index("in:(1, 9)")

    def test_all_topologies_still_deliver_with_vcs(self):
        for topology in (topo.mesh(3, 3), topo.ring(4), topo.single_router(4)):
            sim = Simulator()
            net = Network(sim, topology, vcs=2)
            net.inject(0, request(2, 0, txn_id=7))
            got = pump_all(sim, net, [2], 1, max_cycles=2000)
            assert got[0].txn_id == 7


# ---------------------------------------------------------------------- #
# request/response VC separation on a single plane
# ---------------------------------------------------------------------- #
class TestVcSeparation:
    def test_kind_policy_splits_classes(self):
        policy = KindVcPolicy(DatelineVcPolicy())
        req = request(1, 0)
        rsp = req.make_response()
        assert policy.injection_vc(req, 4) == 0
        assert policy.injection_vc(rsp, 4) == 2
        assert policy.min_vcs == 4
        # responses stay in the upper window through a dateline crossing
        assert policy.output_vc(3, 2, 0, 2, 4) == 3

    def test_separated_fabric_runs_both_directions(self):
        sim = Simulator()
        fab = Fabric(sim, topo.mesh(2, 2), vcs=2, vc_separation=True)
        fab.inject_request(0, request(3, 0, txn_id=1))
        rsp = request(3, 0, txn_id=2).make_response(payload=None)
        fab.inject_response(3, rsp)
        sim.run_until(
            lambda: bool(fab.requests(3)) and bool(fab.responses(0)),
            max_cycles=200,
        )
        assert fab.requests(3).pop().txn_id == 1
        assert fab.responses(0).pop().txn_id == 2
        # one plane, not two
        assert fab.request_plane is fab.response_plane
        sim.run(20)
        assert fab.idle()

    def test_separation_needs_even_vcs(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Fabric(sim, topo.mesh(2, 2), vcs=3, vc_separation=True)
        with pytest.raises(ValueError):
            Fabric(sim, topo.mesh(2, 2), vcs=1, vc_separation=True)


# ---------------------------------------------------------------------- #
# build-time buffer sizing validation (satellite)
# ---------------------------------------------------------------------- #
class TestBufferSizingValidation:
    def test_undersized_link_staging_rejected_at_build(self):
        """A SAF plane whose link staging is shallower than the router
        buffers used to wedge silently mid-run; now it fails to build."""
        sim = Simulator()
        with pytest.raises(BufferSizingError) as err:
            Network(sim, topo.mesh(2, 2),
                    mode=SwitchingMode.STORE_AND_FORWARD,
                    buffer_capacity=16,
                    link_spec=LinkSpec(phit_bits=48, capacity=2))
        message = str(err.value)
        assert "min_buffer_for" in message and "16" in message

    def test_wormhole_tolerates_shallow_links(self):
        sim = Simulator()
        Network(sim, topo.mesh(2, 2), mode=SwitchingMode.WORMHOLE,
                buffer_capacity=16, link_spec=LinkSpec(phit_bits=48, capacity=2))

    def test_domain_crossing_endpoint_links_validated(self):
        """A transparent-looking endpoint spec (no phits, no pipeline)
        still becomes a capacity-limited physical link when the endpoint
        sits in another clock domain — validation must judge it the way
        the wiring will, or the under-sized CDC link wedges silently."""
        from repro.phys.clocking import ClockDomain

        sim = Simulator()
        with pytest.raises(BufferSizingError):
            Network(sim, topo.mesh(2, 2),
                    mode=SwitchingMode.STORE_AND_FORWARD,
                    buffer_capacity=8,
                    endpoint_link_spec=LinkSpec(capacity=1),
                    endpoint_domains={0: ClockDomain("cpu", 1)})
        # Same spec with no crossing is wired as a shared queue of
        # buffer_capacity depth: fine.
        Network(Simulator(), topo.mesh(2, 2),
                mode=SwitchingMode.STORE_AND_FORWARD,
                buffer_capacity=8,
                endpoint_link_spec=LinkSpec(capacity=1))

    def test_oversize_packet_raises_named_error(self):
        sim = Simulator()
        net = Network(sim, topo.mesh(2, 2),
                      mode=SwitchingMode.STORE_AND_FORWARD, buffer_capacity=4)
        with pytest.raises(BufferSizingError) as err:
            net.inject(0, request(3, 0, opcode=Opcode.STORE, beats=32,
                                  payload=[0] * 32))
        assert "min_buffer_for" in str(err.value)


# ---------------------------------------------------------------------- #
# lock-stall accounting (satellite regression)
# ---------------------------------------------------------------------- #
class TestLockStallCounting:
    def test_two_stalled_outputs_count_one_cycle(self):
        """Two lock-stalled outputs in the same cycle used to report two
        "stall cycles"; the counter is per cycle, the per-output detail
        lives in lock_stalls_by_output."""
        sim = Simulator()
        net = Network(sim, topo.single_router(4))
        router = next(iter(net.routers.values()))
        # Master 0 locks the paths to endpoints 2 and 3.
        net.inject(0, request(2, 0, opcode=Opcode.LOCK, txn_id=1))
        net.inject(0, request(3, 0, opcode=Opcode.LOCK, txn_id=2))
        pump_all(sim, net, [2, 3], 2, max_cycles=500)
        assert set(router.locked_outputs()) == {"local:2", "local:3"}
        # Two other masters stall on the two locked ports simultaneously.
        net.inject(1, request(2, 1, txn_id=3))
        net.inject(2, request(3, 2, txn_id=4))
        sim.run(50)
        stalls = router.lock_stalls_by_output
        assert stalls["local:2"] > 0 and stalls["local:3"] > 0
        assert stalls["local:2"] == stalls["local:3"]
        # Both ports stall in the same cycles -> counted once per cycle.
        assert router.lock_stall_cycles == stalls["local:2"]
        assert net.total_lock_stall_cycles() == router.lock_stall_cycles

    def test_locks_still_enforced_with_vcs(self):
        sim = Simulator()
        net = Network(sim, topo.single_router(3), vcs=2)
        net.inject(0, request(2, 0, opcode=Opcode.LOCK, txn_id=1))
        got = pump_all(sim, net, [2], 1, max_cycles=500)
        assert got[0].txn_id == 1
        net.inject(1, request(2, 1, txn_id=2))
        sim.run(50)
        assert not net.ejected(2)
        assert net.total_lock_stall_cycles() > 0
        net.inject(0, request(2, 0, opcode=Opcode.UNLOCK, txn_id=3))
        got = pump_all(sim, net, [2], 2, max_cycles=500)
        assert sorted(p.txn_id for p in got) == [2, 3]
