"""Protocol master models: each socket's issue rules and conversions.

These tests drive masters against a stub responder that mimics an
attachment point (NIU/bridge) at socket level, so the protocol rules are
exercised without the fabric.
"""

import pytest

from repro.core.transaction import Opcode, make_read, make_write
from repro.ip.traffic import ScriptedTraffic
from repro.protocols.ahb import AhbMaster, AhbRequest, AhbResponse, HBurst, HResp, hburst_for
from repro.protocols.axi import AxiB, AxiMaster, AxiR, AxLock, XResp
from repro.protocols.base import ProtocolError
from repro.protocols.ocp import MCmd, OcpMaster, OcpResponse, SResp
from repro.protocols.proprietary import MsgKind, MsgMaster, MsgResponse, make_fence
from repro.protocols.vci import AvciMaster, BvciMaster, PvciMaster, VciRerror, VciResponse
from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.core.transaction import BurstType


class StubResponder(Component):
    """Pops protocol requests and answers after a fixed delay."""

    def __init__(self, name, master, protocol, delay=3):
        super().__init__(name)
        self.master = master
        self.protocol = protocol
        self.delay = delay
        self.pending = []  # (ready_cycle, channel, record)
        self.seen = []

    def tick(self, cycle):
        for ready, channel, record in list(self.pending):
            if ready <= cycle and self.master.socket.rsp(channel).can_push():
                self.master.socket.rsp(channel).push(record)
                self.pending.remove((ready, channel, record))
        if self.protocol == "AXI":
            for ch in ("ar", "aw"):
                q = self.master.socket.req(ch)
                while q:
                    r = q.pop()
                    self.seen.append(r)
                    if ch == "ar":
                        rsp = AxiR(rid=r.arid, rdata=[0] * (r.arlen + 1),
                                   rresp=XResp.OKAY, txn_id=r.txn.txn_id)
                        self.pending.append((cycle + self.delay, "r", rsp))
                    else:
                        rsp = AxiB(bid=r.awid, bresp=XResp.OKAY,
                                   txn_id=r.txn.txn_id)
                        self.pending.append((cycle + self.delay, "b", rsp))
            return
        channel_in = {"AHB": "req", "OCP": "req", "VCI": "cmd", "MSG": "msg"}[
            self.protocol
        ]
        channel_out = {"AHB": "rsp", "OCP": "rsp", "VCI": "rsp", "MSG": "ack"}[
            self.protocol
        ]
        q = self.master.socket.req(channel_in)
        while q:
            r = q.pop()
            self.seen.append(r)
            if self.protocol == "AHB":
                rsp = AhbResponse(
                    txn_id=r.txn.txn_id, hresp=HResp.OKAY,
                    hrdata=None if r.hwrite else [0] * r.beats,
                )
            elif self.protocol == "OCP":
                if r.mcmd is MCmd.WR:
                    continue  # posted: no response
                rsp = OcpResponse(
                    sresp=SResp.DVA, sthreadid=r.mthreadid,
                    sdata=[0] * r.mburstlength, txn_id=r.txn.txn_id,
                )
            elif self.protocol == "VCI":
                rsp = VciResponse(
                    rerror=VciRerror.NORMAL, rdata=[0] * r.cells,
                    rtrdid=r.trdid, txn_id=r.txn.txn_id,
                )
            else:
                if r.kind is MsgKind.PUT:
                    continue
                rsp = MsgResponse(ok=True, data=[0] * r.length_words,
                                  txn_id=r.txn.txn_id)
            self.pending.append((cycle + self.delay, channel_out, rsp))


def run_master(master_cls, protocol, intents, sim_cycles=300, **kwargs):
    sim = Simulator()
    traffic = ScriptedTraffic(intents)
    master = master_cls("m", sim, traffic, **kwargs)
    sim.add(master)
    sim.add(StubResponder("stub", master, protocol))
    sim.run(sim_cycles)
    return master


class TestAhbMaster:
    def test_single_outstanding(self):
        master = run_master(
            AhbMaster, "AHB", [make_read(0x10 * i) for i in range(5)]
        )
        assert master.completed == 5
        assert master.checker.all_complete()

    def test_hburst_encoding(self):
        assert hburst_for(BurstType.INCR, 4) is HBurst.INCR4
        assert hburst_for(BurstType.WRAP, 8) is HBurst.WRAP8
        assert hburst_for(BurstType.INCR, 5) is HBurst.INCR
        assert hburst_for(BurstType.SINGLE, 1) is HBurst.SINGLE
        with pytest.raises(ProtocolError):
            hburst_for(BurstType.WRAP, 5)
        with pytest.raises(ProtocolError):
            hburst_for(BurstType.FIXED, 4)

    def test_request_record_consistency(self):
        with pytest.raises(ProtocolError):
            AhbRequest(haddr=0, hwrite=True, hsize=2, hburst=HBurst.INCR4,
                       beats=4, hwdata=None)
        with pytest.raises(ProtocolError):
            AhbRequest(haddr=0, hwrite=False, hsize=2, hburst=HBurst.INCR4,
                       beats=3)

    def test_exclusive_rejected(self):
        txn = make_read(0)
        txn.excl = True
        with pytest.raises(ProtocolError):
            run_master(AhbMaster, "AHB", [txn])

    def test_locked_sequence_uses_hmastlock(self):
        sim = Simulator()
        from repro.core.transaction import Transaction
        seq = [
            Transaction(opcode=Opcode.READEX, address=0x0),
            Transaction(opcode=Opcode.STORE_COND_LOCKED, address=0x0, data=[1]),
        ]
        traffic = ScriptedTraffic(seq)
        master = AhbMaster("m", sim, traffic)
        sim.add(master)
        stub = StubResponder("stub", master, "AHB")
        sim.add(stub)
        sim.run(100)
        assert all(r.hmastlock for r in stub.seen)
        assert master.completed == 2


class TestAxiMaster:
    def test_multiple_outstanding_per_direction(self):
        intents = [make_read(0x10 * i) for i in range(6)]
        for i, t in enumerate(intents):
            t.txn_tag = i % 3
        master = run_master(AxiMaster, "AXI", intents,
                            max_outstanding_reads=4, id_count=4)
        assert master.completed == 6
        assert master.checker.all_complete()

    def test_reads_and_writes_use_separate_channels(self):
        intents = [make_read(0x0), make_write(0x4, [1])]
        sim = Simulator()
        master = AxiMaster("m", sim, ScriptedTraffic(intents))
        sim.add(master)
        stub = StubResponder("stub", master, "AXI")
        sim.add(stub)
        sim.run(200)
        kinds = {type(r).__name__ for r in stub.seen}
        assert kinds == {"AxiAR", "AxiAW"}

    def test_exclusive_marks_axlock(self):
        txn = make_read(0x0)
        txn.excl = True
        sim = Simulator()
        master = AxiMaster("m", sim, ScriptedTraffic([txn]))
        sim.add(master)
        stub = StubResponder("stub", master, "AXI")
        sim.add(stub)
        sim.run(100)
        assert stub.seen[0].arlock is AxLock.EXCLUSIVE

    def test_locked_ops_rejected(self):
        from repro.core.transaction import Transaction
        txn = Transaction(opcode=Opcode.READEX, address=0)
        with pytest.raises(ProtocolError):
            run_master(AxiMaster, "AXI", [txn])

    def test_posted_store_rejected(self):
        txn = make_write(0, [1], posted=True)
        with pytest.raises(ProtocolError):
            run_master(AxiMaster, "AXI", [txn])


class TestOcpMaster:
    def test_threads_interleave(self):
        intents = []
        for i in range(6):
            t = make_read(0x10 * i)
            t.thread = i % 2
            intents.append(t)
        master = run_master(OcpMaster, "OCP", intents, threads=2)
        assert master.completed == 6

    def test_posted_write_completes_without_response(self):
        master = run_master(OcpMaster, "OCP", [make_write(0, [1])],
                            posted_writes=True)
        assert master.completed == 1
        assert master.posted_count == 1

    def test_nonposted_write_waits(self):
        master = run_master(OcpMaster, "OCP", [make_write(0, [1])],
                            posted_writes=False)
        assert master.completed == 1
        assert master.posted_count == 0

    def test_lazy_sync_commands(self):
        load = make_read(0)
        load.excl = True
        store = make_write(0, [1])
        store.excl = True
        sim = Simulator()
        master = OcpMaster("m", sim, ScriptedTraffic([load, store]))
        sim.add(master)
        stub = StubResponder("stub", master, "OCP")
        sim.add(stub)
        sim.run(200)
        assert [r.mcmd for r in stub.seen] == [MCmd.RDL, MCmd.WRC]

    def test_lock_rejected(self):
        from repro.core.transaction import Transaction
        with pytest.raises(ProtocolError):
            run_master(OcpMaster, "OCP",
                       [Transaction(opcode=Opcode.READEX, address=0)])


class TestVciMasters:
    def test_pvci_single_outstanding(self):
        master = run_master(PvciMaster, "VCI",
                            [make_read(0x10 * i) for i in range(4)])
        assert master.completed == 4

    def test_bvci_pipelines(self):
        master = run_master(BvciMaster, "VCI",
                            [make_read(0x10 * i) for i in range(8)],
                            max_outstanding=4)
        assert master.completed == 8

    def test_pvci_rejects_locked(self):
        from repro.core.transaction import Transaction
        with pytest.raises(ProtocolError):
            run_master(PvciMaster, "VCI",
                       [Transaction(opcode=Opcode.READEX, address=0)])

    def test_avci_tags(self):
        intents = []
        for i in range(6):
            t = make_read(0x10 * i)
            t.txn_tag = i
            intents.append(t)
        master = run_master(AvciMaster, "VCI", intents, tag_count=4)
        assert master.completed == 6

    def test_excl_rejected_on_all_flavors(self):
        txn = make_read(0)
        txn.excl = True
        for cls in (PvciMaster, BvciMaster, AvciMaster):
            with pytest.raises(ProtocolError):
                run_master(cls, "VCI", [txn])


class TestMsgMaster:
    def test_get_put(self):
        intents = [make_write(0x0, [1], posted=True), make_read(0x0)]
        master = run_master(MsgMaster, "MSG", intents)
        assert master.completed == 2

    def test_fence_waits_for_priors(self):
        intents = [make_read(0x0), make_fence("m"), make_read(0x4)]
        master = run_master(MsgMaster, "MSG", intents)
        assert master.completed == 3
        assert master.fences_issued == 1

    def test_sync_rejected(self):
        txn = make_read(0)
        txn.excl = True
        with pytest.raises(ProtocolError):
            run_master(MsgMaster, "MSG", [txn])
