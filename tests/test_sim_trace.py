"""Unit tests for the tracer."""

from repro.sim.trace import TraceEvent, Tracer


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.log(0, "src", "kind", a=1)
    assert len(t) == 0


def test_enabled_tracer_records():
    t = Tracer()
    t.log(5, "router", "route", dest=3)
    assert len(t) == 1
    event = t.events[0]
    assert event.cycle == 5
    assert event.source == "router"
    assert event.detail == {"dest": 3}


def test_kind_filter():
    t = Tracer(kinds=["lock_set"])
    t.log(0, "r", "route")
    t.log(1, "r", "lock_set")
    assert len(t) == 1
    assert t.events[0].kind == "lock_set"


def test_of_kind_and_from_source():
    t = Tracer()
    t.log(0, "a", "x")
    t.log(1, "b", "x")
    t.log(2, "a", "y")
    assert len(t.of_kind("x")) == 2
    assert len(t.from_source("a")) == 2


def test_sink_callback():
    seen = []
    t = Tracer(sink=seen.append)
    t.log(0, "s", "k")
    assert len(seen) == 1
    assert isinstance(seen[0], TraceEvent)


def test_dump_and_clear():
    t = Tracer()
    t.log(3, "s", "k", v=9)
    assert "v=9" in t.dump()
    t.clear()
    assert len(t) == 0


def test_max_events_ring_buffer_keeps_newest():
    t = Tracer(max_events=3)
    for i in range(10):
        t.log(i, "s", "k")
    assert len(t) == 3
    assert [e.cycle for e in t.events] == [7, 8, 9]
    assert t.total_logged == 10
    assert t.dropped_events == 7


def test_max_events_rejects_nonpositive():
    import pytest

    with pytest.raises(ValueError):
        Tracer(max_events=0)


def test_enabled_toggle_rebinds_log():
    t = Tracer(enabled=False)
    t.log(0, "s", "k")
    assert len(t) == 0
    t.enabled = True
    t.log(1, "s", "k")
    assert len(t) == 1
    t.enabled = False
    t.log(2, "s", "k")
    assert len(t) == 1
