"""Unit tests for the staged FIFO primitive."""

import pytest

from repro.sim.queue import SimQueue


def test_push_invisible_until_commit():
    q = SimQueue("q", capacity=4)
    q.push("a")
    assert len(q) == 0
    assert not q
    q.commit()
    assert len(q) == 1
    assert q.peek() == "a"


def test_pop_returns_fifo_order():
    q = SimQueue("q", capacity=8)
    for item in ("a", "b", "c"):
        q.push(item)
    q.commit()
    assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]


def test_capacity_counts_staged_plus_committed():
    q = SimQueue("q", capacity=2)
    q.push(1)
    q.commit()
    q.push(2)
    assert not q.can_push()
    with pytest.raises(OverflowError):
        q.push(3)


def test_pop_frees_capacity_immediately():
    q = SimQueue("q", capacity=1)
    q.push(1)
    q.commit()
    assert not q.can_push()
    q.pop()
    assert q.can_push()


def test_pop_empty_raises():
    q = SimQueue("q")
    with pytest.raises(IndexError):
        q.pop()


def test_peek_out_of_range():
    q = SimQueue("q")
    q.push(1)
    q.commit()
    with pytest.raises(IndexError):
        q.peek(1)


def test_unbounded_queue():
    q = SimQueue("q", capacity=None)
    for i in range(1000):
        q.push(i)
    assert q.can_push(10_000)
    q.commit()
    assert len(q) == 1000


def test_invalid_capacity_rejected():
    with pytest.raises(ValueError):
        SimQueue("q", capacity=0)


def test_iteration_does_not_consume():
    q = SimQueue("q", capacity=4)
    q.push(1)
    q.push(2)
    q.commit()
    assert list(q) == [1, 2]
    assert len(q) == 2


def test_drain_empties_and_counts():
    q = SimQueue("q", capacity=4)
    q.push(1)
    q.push(2)
    q.commit()
    assert q.drain() == [1, 2]
    assert len(q) == 0
    assert q.total_popped == 2


def test_statistics_counters():
    q = SimQueue("q", capacity=4)
    q.push(1)
    q.push(2)
    q.commit()
    q.pop()
    assert q.total_pushed == 2
    assert q.total_popped == 1
    assert q.high_watermark == 2


def test_occupancy_includes_staged():
    q = SimQueue("q", capacity=4)
    q.push(1)
    q.commit()
    q.push(2)
    assert q.occupancy == 2
    assert q.staged_count == 1
    assert len(q) == 1


def test_drain_leaves_staged_items_by_default():
    q = SimQueue("q", capacity=4)
    q.push(1)
    q.commit()
    q.push(2)  # staged, not yet visible
    assert q.drain() == [1]
    assert q.staged_count == 1
    q.commit()
    assert list(q) == [2]


def test_drain_include_staged_clears_everything():
    q = SimQueue("q", capacity=4)
    q.push(1)
    q.commit()
    q.push(2)
    q.push(3)
    assert q.drain(include_staged=True) == [1, 2, 3]
    assert q.occupancy == 0
    # accounting invariant: pushed - popped == occupancy
    assert q.total_pushed - q.total_popped == q.occupancy == 0


def test_high_watermark_tracks_committed_peak():
    q = SimQueue("q", capacity=8)
    for i in range(3):
        q.push(i)
    q.commit()
    assert q.high_watermark == 3
    q.drain()
    q.commit()
    assert q.high_watermark == 3  # watermark is a max, drain keeps it


class _WakeRecorder:
    def __init__(self):
        self.wakes = 0

    def wake(self):
        self.wakes += 1


def test_wake_on_push_fires_at_commit_not_push():
    q = SimQueue("q", capacity=4)
    consumer = _WakeRecorder()
    q.wake_on_push(consumer)
    q.push(1)
    assert consumer.wakes == 0  # staged items are not yet visible
    q.commit()
    assert consumer.wakes == 1
    q.commit()  # nothing staged: no spurious wake
    assert consumer.wakes == 1


def test_wake_on_pop_fires_per_pop_and_drain():
    q = SimQueue("q", capacity=4)
    producer = _WakeRecorder()
    q.wake_on_pop(producer)
    q.push(1)
    q.push(2)
    q.commit()
    q.pop()
    assert producer.wakes == 1
    q.drain()
    assert producer.wakes == 2


def test_wake_registration_is_idempotent():
    q = SimQueue("q", capacity=4)
    consumer = _WakeRecorder()
    q.wake_on_push(consumer)
    q.wake_on_push(consumer)
    q.push(1)
    q.commit()
    assert consumer.wakes == 1
