"""Minimal-adaptive routing with escape VCs (PR 4).

The tentpole machinery: multi-output minimal route tables, the
EscapeVcPolicy adaptive/escape VC split, congestion-aware output/VC
selection in the router's VC-allocation stage, per-pair resequencing at
ejection, and the deadlock-freedom contract — adversarial workloads that
freeze under pure minimal-adaptive routing (no escape class) and
complete once the escape subnetwork is in place.  Also pins the one-cycle
lock-admission window at VC allocation (ROADMAP open item).
"""

import pytest

from repro.core.packet import NocPacket, PacketKind
from repro.core.transaction import Opcode
from repro.sim.kernel import SimulationError, Simulator
from repro.transport import topology as topo
from repro.transport.flit import Packetizer
from repro.transport.network import EjectionPort, Fabric, Network
from repro.transport.router import Router
from repro.transport.routing import (
    EscapeVcPolicy,
    compute_adaptive_tables,
    compute_tables,
    make_vc_policy,
    port_local,
    port_to,
)


def request(slv, mst, opcode=Opcode.LOAD, beats=1, priority=0, txn_id=-1,
            payload=None):
    return NocPacket(
        kind=PacketKind.REQUEST,
        opcode=opcode,
        slv_addr=slv,
        mst_addr=mst,
        tag=0,
        beats=beats,
        payload=payload,
        priority=priority,
        txn_id=txn_id,
    )


def pump_all(sim, net, endpoints, expected, max_cycles):
    received = []

    def pump():
        for ep in endpoints:
            queue = net.ejected(ep)
            while queue:
                received.append(queue.pop())
        return len(received) >= expected

    sim.run_until(pump, max_cycles=max_cycles)
    return received


# ---------------------------------------------------------------------- #
# multi-output route tables
# ---------------------------------------------------------------------- #
class TestAdaptiveTables:
    def test_torus_minimal_quadrant(self):
        t = topo.torus(4, 4)
        tables = compute_adaptive_tables(t)
        # endpoint 15 lives at (3, 3); from (1, 1) both dimensions have
        # offset 2 = an even split, so all four neighbours are minimal.
        assert tables[(1, 1)].outputs(15) == (
            port_to((0, 1)), port_to((1, 0)), port_to((1, 2)), port_to((2, 1))
        )
        # endpoint 0 at (0, 0): unique minimal direction per dimension.
        assert tables[(1, 1)].outputs(0) == (port_to((0, 1)), port_to((1, 0)))

    def test_escape_is_minimal_and_matches_dor(self):
        t = topo.torus(4, 4)
        tables = compute_adaptive_tables(t)
        dor = compute_tables(t, "dor")
        for router, table in tables.items():
            for endpoint in t.endpoints:
                assert table.escape_port(endpoint) == dor[router][endpoint]
                assert table.escape_port(endpoint) in table.outputs(endpoint)

    def test_mesh_escape_falls_back_to_xy(self):
        t = topo.mesh(3, 3)
        tables = compute_adaptive_tables(t)
        xy = compute_tables(t, "xy")
        for router, table in tables.items():
            for endpoint in t.endpoints:
                assert table.escape_port(endpoint) == xy[router][endpoint]

    def test_home_router_ejects(self):
        t = topo.ring(4)
        tables = compute_adaptive_tables(t)
        home = t.router_of(2)
        assert tables[home].outputs(2) == (port_local(2),)
        assert tables[home].escape_port(2) == port_local(2)

    def test_every_candidate_is_strictly_closer(self):
        t = topo.torus(4, 4)
        tables = compute_adaptive_tables(t)
        for router in t.routers:
            for endpoint in t.endpoints:
                home = t.router_of(endpoint)
                if router == home:
                    continue
                dist = t.distances_to(home)
                for port in tables[router].outputs(endpoint):
                    neighbor = next(
                        n for n in t.graph.neighbors(router)
                        if port == port_to(n)
                    )
                    assert dist[neighbor] < dist[router]

    def test_compute_tables_rejects_adaptive(self):
        with pytest.raises(ValueError):
            compute_tables(topo.ring(4), "adaptive")

    def test_arbitrary_graph_falls_back_to_bfs_escape(self):
        """Non-numeric router ids (irregular floorplans) have no DOR/XY
        geometry; the escape table must fall back to BFS tables instead
        of crashing on the id arithmetic, and the fabric still delivers."""
        t = topo.custom(
            [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")],
            {0: "a", 1: "c", 2: "d"},
            name="floorplan",
        )
        tables = compute_adaptive_tables(t)
        bfs = compute_tables(t, "table")
        for router, table in tables.items():
            for endpoint in t.endpoints:
                assert table.escape_port(endpoint) == bfs[router][endpoint]
        sim = Simulator()
        net = Network(sim, t, routing="adaptive", vcs=3)
        net.inject(0, request(2, 0, opcode=Opcode.STORE, beats=4,
                              payload=[0] * 4, txn_id=5))
        got = pump_all(sim, net, [2], 1, max_cycles=2000)
        assert got[0].txn_id == 5


# ---------------------------------------------------------------------- #
# the escape VC policy
# ---------------------------------------------------------------------- #
class TestEscapeVcPolicy:
    def test_class_split(self):
        policy = EscapeVcPolicy()
        assert policy.min_vcs == 3
        assert policy.adaptive_vcs(4) == 2
        assert policy.escape_base(4) == 2
        assert not policy.is_escape_vc(1, 4)
        assert policy.is_escape_vc(2, 4) and policy.is_escape_vc(3, 4)

    def test_pure_adaptive_ablation(self):
        policy = EscapeVcPolicy(escape=False)
        assert policy.min_vcs == 1
        assert policy.adaptive_vcs(2) == 2
        assert not policy.is_escape_vc(1, 2)

    def test_escape_dateline_classes(self):
        policy = EscapeVcPolicy()
        # plain hop entering escape from an adaptive VC: class 0
        assert policy.escape_output_vc(1, 0, 2, 0, 4) == 2
        # wraparound edge promotes to class 1 (top VC)
        assert policy.escape_output_vc(3, 2, 0, 2, 4) == 3
        # already promoted, same dimension: stays class 1
        assert policy.escape_output_vc(0, 3, 1, 3, 4) == 3
        # dimension change on the escape net resets to class 0
        assert policy.escape_output_vc((0, 1), (3, 1), (0, 2), 3, 4) == 2

    def test_injection_maps_priority_into_adaptive_class(self):
        policy = EscapeVcPolicy()
        low = request(1, 0, priority=0)
        high = request(1, 0, priority=5)
        assert policy.injection_vc(low, 5) == 0
        assert policy.injection_vc(high, 5) == 2  # clamped to adaptive VCs

    def test_factory(self):
        assert isinstance(make_vc_policy("escape"), EscapeVcPolicy)


# ---------------------------------------------------------------------- #
# the headline: escape VCs make minimal-adaptive routing deadlock-free
# ---------------------------------------------------------------------- #
class TestEscapeDeadlockFreedom:
    """Adversarial workload with a cyclic channel dependency on every
    adaptive VC: two long packets per ring router, each two hops along
    the unique minimal direction, injected in the same cycle.  Pure
    minimal-adaptive (no escape class) freezes; the escape subnetwork
    (DOR + dateline pair) drains it (ISSUE 4 acceptance)."""

    def _topology(self, shape):
        if shape == "ring":
            return topo.ring(6, endpoints=12)
        # torus with the adversarial ring as row 0, two endpoints per
        # row-0 router — Y links exist but are never minimal for this
        # traffic, so the cycle lives in the X ring exactly as on ring6.
        t = topo.torus(6, 3)
        return topo.Topology(
            t.graph, {ep: (ep % 6, 0) for ep in range(12)}, name="torus6x3row"
        )

    def _build(self, shape, vcs, policy):
        sim = Simulator()
        net = Network(
            sim,
            self._topology(shape),
            routing="adaptive",
            buffer_capacity=2,
            vcs=vcs,
            vc_policy=policy,
            endpoint_queue_capacity=2,
        )
        return sim, net

    def _inject_cycle_of_waits(self, net):
        # Both endpoints of every ring router send a long packet two hops
        # clockwise at once.  Each packet holds an output VC on its first
        # link while waiting for one on the next, and with one packet per
        # adaptive VC per link the waits close a cycle around the ring.
        for ep in range(12):
            dest = (ep % 6 + 2) % 6
            net.inject(
                ep,
                request(dest, ep, opcode=Opcode.STORE, beats=16,
                        payload=[0] * 16, txn_id=ep),
            )

    @pytest.mark.parametrize("shape", ["ring", "torus"])
    def test_pure_adaptive_freezes(self, shape):
        sim, net = self._build(shape, 2, EscapeVcPolicy(escape=False))
        self._inject_cycle_of_waits(net)
        with pytest.raises(SimulationError):
            pump_all(sim, net, range(6), 12, max_cycles=4000)
        # True deadlock, not slowness: no flit moves ever again.
        frozen = net.total_flits_forwarded()
        sim.run(300)
        assert net.total_flits_forwarded() == frozen

    @pytest.mark.parametrize("shape", ["ring", "torus"])
    def test_escape_vcs_complete(self, shape):
        sim, net = self._build(shape, 3, "escape")
        self._inject_cycle_of_waits(net)
        got = pump_all(sim, net, range(6), 12, max_cycles=30_000)
        assert sorted(p.txn_id for p in got) == list(range(12))
        # The escape subnetwork did real work, not just the adaptive VCs.
        assert sum(r.packets_escape for r in net.routers.values()) > 0
        sim.run(50)
        assert net.idle()
        assert sim.active_count == 0  # wake protocol: adaptive fabric retires

    def test_all_pairs_torus(self):
        sim = Simulator()
        t = topo.torus(4, 4)
        net = Network(sim, t, routing="adaptive", vcs=3, buffer_capacity=4)
        eps = t.endpoints
        pairs = [(s, d) for s in eps for d in eps if s != d]
        received = []

        def pump():
            while pairs and net.can_inject(pairs[0][0]):
                src, dst = pairs.pop(0)
                net.inject(src, request(dst, src, opcode=Opcode.STORE,
                                        beats=8, payload=[0] * 8,
                                        txn_id=src * 100 + dst))
            for ep in eps:
                queue = net.ejected(ep)
                while queue:
                    received.append(queue.pop())
            return not pairs and len(received) >= 240
        sim.run_until(pump, max_cycles=120_000)
        assert len(received) == 240
        sim.run(50)
        assert net.idle() and sim.active_count == 0


# ---------------------------------------------------------------------- #
# congestion-aware selection
# ---------------------------------------------------------------------- #
class TestCongestionAwareSelection:
    def _run_stream(self, routing, vcs, policy):
        sim = Simulator()
        t = topo.torus(4, 4)
        net = Network(sim, t, routing=routing, vcs=vcs, vc_policy=policy,
                      buffer_capacity=2)
        source = net.routers[(0, 0)]
        sent = 0
        received = []

        def pump():
            nonlocal sent
            # endpoint 0 at (0, 0) streams to endpoint 10 at (2, 2)
            if sent < 12 and net.can_inject(0):
                net.inject(0, request(10, 0, opcode=Opcode.STORE, beats=8,
                                      payload=[0] * 8, txn_id=sent))
                sent += 1
            queue = net.ejected(10)
            while queue:
                received.append(queue.pop())
            return len(received) >= 12
        sim.run_until(pump, max_cycles=30_000)
        used = [port for port, busy in source.output_busy_cycles.items()
                if busy and port.startswith("to:")]
        return received, used

    def test_adaptive_spreads_over_minimal_outputs(self):
        received, used = self._run_stream("adaptive", 3, "escape")
        assert len(used) >= 2  # congestion pushed traffic onto siblings

    def test_dor_keeps_one_path(self):
        received, used = self._run_stream("dor", 2, "dateline")
        assert len(used) == 1

    def test_adaptive_preserves_pair_fifo(self):
        """Route choice is per packet, yet same-pair packets are
        delivered in injection order: the resequencing stage restores
        the fabric contract the transaction layer is built on."""
        received, _used = self._run_stream("adaptive", 3, "escape")
        assert [p.txn_id for p in received] == list(range(12))


# ---------------------------------------------------------------------- #
# resequencing unit behaviour
# ---------------------------------------------------------------------- #
class TestResequencing:
    def test_out_of_order_arrival_parks_and_releases(self):
        sim = Simulator()
        flit_queues = [sim.new_queue(f"fl{v}", capacity=8) for v in range(2)]
        pkts = sim.new_queue("pkts", capacity=4)
        eport = EjectionPort("ej", 0, flit_queues, pkts, resequence=True)
        sim.add(eport)
        pk = Packetizer(128)
        late = request(0, 5, txn_id=1)
        late.fabric_seq = 1
        early = request(0, 5, txn_id=0)
        early.fabric_seq = 0
        for flit in pk.segment(late, vc=0):
            flit_queues[0].push(flit)
        sim.run(3)
        # seq 1 arrived first: parked, nothing delivered yet
        assert eport.reorder_occupancy == 1
        assert not pkts
        for flit in pk.segment(early, vc=1):
            flit_queues[1].push(flit)
        sim.run(4)
        assert [p.txn_id for p in pkts.drain()] == [0, 1]
        assert eport.packets_resequenced == 1
        assert eport.reorder_occupancy == 0
        assert eport.reorder_high_watermark == 2
        sim.run(10)
        assert eport.is_idle()

    def test_deterministic_planes_have_no_sequence(self):
        sim = Simulator()
        net = Network(sim, topo.ring(4), routing="dor", vcs=2,
                      vc_policy="dateline")
        net.inject(0, request(2, 0, txn_id=7))
        got = pump_all(sim, net, [2], 1, max_cycles=2000)
        assert got[0].fabric_seq == -1  # never stamped
        assert all(
            eport.reorder_occupancy == 0
            for eport in net.ejection_ports.values()
        )


# ---------------------------------------------------------------------- #
# configuration validation
# ---------------------------------------------------------------------- #
class TestAdaptiveValidation:
    def test_needs_three_vcs_with_escape(self):
        with pytest.raises(ValueError):
            Network(Simulator(), topo.ring(4), routing="adaptive", vcs=2)

    def test_rejects_foreign_policy(self):
        with pytest.raises(ValueError):
            Network(Simulator(), topo.ring(4), routing="adaptive", vcs=3,
                    vc_policy="dateline")

    def test_rejects_vc_separation(self):
        with pytest.raises(ValueError):
            Fabric(Simulator(), topo.torus(3, 3), routing="adaptive", vcs=4,
                   vc_separation=True)

    def test_defaults_to_escape_policy(self):
        net = Network(Simulator(), topo.ring(4), routing="adaptive", vcs=3)
        assert isinstance(net.vc_policy, EscapeVcPolicy)

    def test_locks_still_enforced_on_adaptive_fabric(self):
        sim = Simulator()
        net = Network(sim, topo.single_router(3), routing="adaptive", vcs=3)
        net.inject(0, request(2, 0, opcode=Opcode.LOCK, txn_id=1))
        got = pump_all(sim, net, [2], 1, max_cycles=500)
        assert got[0].txn_id == 1
        net.inject(1, request(2, 1, txn_id=2))
        sim.run(50)
        assert not net.ejected(2)
        assert net.total_lock_stall_cycles() > 0
        net.inject(0, request(2, 0, opcode=Opcode.UNLOCK, txn_id=3))
        got = pump_all(sim, net, [2], 2, max_cycles=500)
        assert sorted(p.txn_id for p in got) == [2, 3]

    def test_lock_packets_ride_the_escape_network(self):
        """LOCK and its paired UNLOCK must traverse the same ports, so
        lock-family packets route escape-only even on adaptive VCs."""
        sim = Simulator()
        t = topo.torus(4, 4)
        net = Network(sim, t, routing="adaptive", vcs=3)
        net.inject(0, request(10, 0, opcode=Opcode.LOCK, txn_id=1))
        pump_all(sim, net, [10], 1, max_cycles=2000)
        net.inject(0, request(10, 0, opcode=Opcode.UNLOCK, txn_id=2))
        pump_all(sim, net, [10], 1, max_cycles=2000)
        sim.run(50)
        # every router is unlocked again: set and clear paired per port
        assert all(not r.locked_outputs() for r in net.routers.values())
        assert net.idle()


# ---------------------------------------------------------------------- #
# lock critical sections on a full adaptive SoC
# ---------------------------------------------------------------------- #
class TestAdaptiveLockSoc:
    def test_bystander_cannot_wedge_the_critical_section(self):
        """Regression: adaptive multi-path arrival can land a bystander's
        request in the target's delivery queue around the LOCK; blocking
        it at the queue *head* used to head-of-line block the holder's
        own traffic — including the UNLOCK — and wedge the SoC.  The
        target NIU now parks lock-blocked requests aside (per-source
        FIFO preserved), so the critical section always completes."""
        import itertools

        import repro.core.transaction as txn_mod
        import repro.transport.flit as flit_mod
        from repro.ip.masters import random_workload, sync_workload
        from repro.soc import InitiatorSpec, SocBuilder, TargetSpec

        txn_mod._txn_ids = itertools.count()
        flit_mod._flit_packet_ids = itertools.count()
        builder = SocBuilder(
            topology=topo.torus(3, 3, endpoints=6),
            routing="adaptive",
            adaptive_vcs=2,
        )
        for i in range(3):
            builder.add_initiator(InitiatorSpec(
                f"ip{i}", "AXI",
                random_workload(f"ip{i}", [(0, 0x1000), (0x1000, 0x1000)],
                                count=25, seed=i, tags=4, rate=0.6),
                protocol_kwargs={"id_count": 4},
            ))
        builder.add_initiator(InitiatorSpec(
            "sync", "AHB",
            sync_workload("sync", "lock", sema_addr=0x0, work_addr=0x200,
                          iterations=2, seed=9),
        ))
        builder.add_target(TargetSpec("m0", size=0x1000))
        builder.add_target(TargetSpec("m1", size=0x1000))
        soc = builder.build()
        soc.run_to_completion(max_cycles=400_000)
        assert all(m.finished() for m in soc.masters.values())
        assert soc.ordering_violations() == 0
        # the parked list engaged and drained
        assert all(t.outstanding == 0 for t in soc.target_nius.values())
        soc.run(16)
        assert soc.sim.active_count == 0


# ---------------------------------------------------------------------- #
# the one-cycle lock-admission window (ROADMAP open item, now pinned)
# ---------------------------------------------------------------------- #
class TestLockAdmissionWindow:
    """Lock admission is decided at VC allocation, which reads the lock
    state *before* the same cycle's transfers: a head VC-allocated in the
    very cycle a LOCK tail passes is treated as having entered the locked
    path first.  The window is one cycle wide and deterministic — this
    test pins the winner."""

    def _flits(self, packet, vc):
        return Packetizer(128).segment(packet, vc=vc)

    def test_allocation_in_lock_set_cycle_is_admitted(self):
        sim = Simulator()
        table = {0: "local:0", 1: "local:1", 2: "local:2"}
        router = Router("r", 0, table, vcs=2, buffer_capacity=4)
        in_a = sim.new_queue("inA", capacity=8)
        in_b = sim.new_queue("inB", capacity=8)
        router.add_input("in:a", in_a, vc=0)
        router.add_input("in:b", in_b, vc=1)
        out = [
            router.add_output("local:2", sim.new_queue(f"out{vc}", capacity=8),
                              vc=vc)
            for vc in range(2)
        ]
        sim.add(router)

        # Locker: single-flit LOCK from master 0 (head = tail), priority 1
        # so it wins switch allocation in the contested cycle.  Victim: a
        # single-flit request from master 1 committed in the same cycle,
        # so both heads VC-allocate in the same Phase V — before the LOCK
        # tail's Phase B transfer sets the lock.
        locker = request(2, 0, opcode=Opcode.LOCK, priority=1, txn_id=1)
        victim = request(2, 1, txn_id=2)
        for flit in self._flits(locker, 0):
            in_a.push(flit)
        for flit in self._flits(victim, 1):
            in_b.push(flit)
        sim.run(1)  # both heads visible
        sim.run(1)  # both allocate in Phase V; the LOCK tail transfers in
        #             Phase B of the same cycle -> lock set *after* grant
        assert router.locked_outputs() == {"local:2": 0}
        # The window: the victim owns its output VC despite the lock.
        assert router._input_alloc[("in:b", 1)] == ("local:2", 1)
        sim.run(2)
        # ...and its flit passed the locked port (entered "first").
        assert [f.src for f in out[1]] == [1]
        assert router.lock_stalls_by_output["local:2"] == 0

        # A later head from a non-holder is refused at allocation.
        late = request(2, 1, txn_id=3)
        for flit in self._flits(late, 1):
            in_b.push(flit)
        sim.run(10)
        assert router._input_alloc[("in:b", 1)] is None
        assert router.lock_stalls_by_output["local:2"] > 0
        assert len(in_b) == 1  # still parked at the input

        # UNLOCK from the holder releases it.
        unlock = request(2, 0, opcode=Opcode.UNLOCK, beats=1, payload=[0],
                         priority=1, txn_id=4)
        for flit in self._flits(unlock, 0):
            in_a.push(flit)
        sim.run(10)
        assert router.locked_outputs() == {}
        assert not in_b  # the refused head finally went through
