"""Unit tests for traffic sources."""

import pytest

from repro.core.transaction import Opcode, ResponseStatus, make_read
from repro.ip.traffic import (
    DependentTraffic,
    PoissonTraffic,
    ScriptedTraffic,
    StreamTraffic,
    SyncWorkload,
)

OK = ResponseStatus.OKAY


class TestScripted:
    def test_issues_in_order_then_done(self):
        intents = [make_read(0x10 * i) for i in range(3)]
        src = ScriptedTraffic(intents)
        polled = [src.poll(c) for c in range(4)]
        assert polled[:3] == intents
        assert polled[3] is None
        assert src.done()

    def test_records_completions(self):
        src = ScriptedTraffic([make_read(0)])
        src.notify_complete(7, 42, OK)
        assert src.completions == [(7, 42, OK)]


class TestPoisson:
    def test_reproducible_with_seed(self):
        def generate():
            src = PoissonTraffic("m", seed=9, count=50,
                                 address_ranges=[(0, 0x1000)], rate=1.0)
            return [src.poll(c).describe() for c in range(50)]
        assert generate() == generate()

    def test_rate_throttles(self):
        src = PoissonTraffic("m", seed=1, count=1000,
                             address_ranges=[(0, 0x1000)], rate=0.1)
        issued = sum(1 for c in range(1000) if src.poll(c) is not None)
        assert 40 < issued < 250  # ~100 expected

    def test_addresses_within_ranges(self):
        src = PoissonTraffic("m", seed=2, count=200,
                             address_ranges=[(0x100, 0x100)],
                             rate=1.0, burst_beats=(1, 4, 8))
        while not src.done():
            txn = src.poll(0)
            if txn is None:
                continue
            for addr in txn.beat_addresses():
                assert 0x100 <= addr < 0x200

    def test_threads_and_tags_spread(self):
        src = PoissonTraffic("m", seed=3, count=100,
                             address_ranges=[(0, 0x1000)], rate=1.0,
                             threads=4, tags=4)
        threads, tags = set(), set()
        while not src.done():
            txn = src.poll(0)
            if txn:
                threads.add(txn.thread)
                tags.add(txn.txn_tag)
        assert len(threads) == 4 and len(tags) == 4

    def test_bad_params(self):
        with pytest.raises(ValueError):
            PoissonTraffic("m", 1, 10, [(0, 64)], rate=0.0)
        with pytest.raises(ValueError):
            PoissonTraffic("m", 1, 10, [], rate=0.5)


class TestDependent:
    def test_waits_for_completion_and_think_time(self):
        src = DependentTraffic("m", seed=1, count=2,
                               address_ranges=[(0, 0x100)], think_cycles=5)
        first = src.poll(0)
        assert first is not None
        assert src.poll(1) is None  # waiting
        src.notify_complete(first.txn_id, 10, OK)
        assert src.poll(12) is None  # still thinking
        assert src.poll(15) is not None

    def test_done_only_after_last_completion(self):
        src = DependentTraffic("m", seed=1, count=1,
                               address_ranges=[(0, 0x100)])
        txn = src.poll(0)
        assert not src.done()
        src.notify_complete(txn.txn_id, 5, OK)
        assert src.done()


class TestStream:
    def test_covers_region_contiguously(self):
        src = StreamTraffic("dma", base=0x100, bytes_total=256,
                            burst_beats=8, beat_bytes=4)
        addresses = []
        while not src.done():
            txn = src.poll(0)
            addresses.extend(txn.beat_addresses())
        assert addresses == [0x100 + 4 * i for i in range(64)]

    def test_gap_cycles_pace_bursts(self):
        src = StreamTraffic("dma", base=0, bytes_total=128, gap_cycles=10)
        assert src.poll(0) is not None
        assert src.poll(5) is None
        assert src.poll(10) is not None

    def test_read_mode_and_priority(self):
        src = StreamTraffic("vid", base=0, bytes_total=64, write=False,
                            priority=2)
        txn = src.poll(0)
        assert txn.opcode is Opcode.LOAD
        assert txn.priority == 2

    def test_posted_mode(self):
        src = StreamTraffic("dma", base=0, bytes_total=64, posted=True)
        assert src.poll(0).opcode is Opcode.STORE_POSTED


class TestSyncWorkload:
    def _drive(self, src, responder):
        """Run the state machine with a scripted responder."""
        cycle = 0
        while not src.done() and cycle < 1000:
            txn = src.poll(cycle)
            if txn is not None:
                status = responder(txn)
                src.notify_complete(txn.txn_id, cycle, status)
            cycle += 1
        return cycle

    def test_lock_style_sequence(self):
        src = SyncWorkload("m", "lock", sema_addr=0, work_addr=0x100,
                           iterations=2, work_ops=2)
        ops = []
        def responder(txn):
            ops.append(txn.opcode)
            return OK
        self._drive(src, responder)
        assert src.sections_completed == 2
        # per iteration: READEX, work reads, locked release
        assert ops[0] is Opcode.READEX
        assert Opcode.STORE_COND_LOCKED in ops

    def test_excl_style_retries_on_failure(self):
        src = SyncWorkload("m", "excl", sema_addr=0, work_addr=0x100,
                           iterations=1, work_ops=1)
        fail_once = {"left": 1}
        def responder(txn):
            if txn.excl and txn.opcode.is_write:
                if fail_once["left"]:
                    fail_once["left"] -= 1
                    return OK  # exclusive store failed
                return ResponseStatus.EXOKAY
            if txn.excl:
                return ResponseStatus.EXOKAY
            return OK
        self._drive(src, responder)
        assert src.retries == 1
        assert src.sections_completed == 1

    def test_invalid_style(self):
        with pytest.raises(ValueError):
            SyncWorkload("m", "spin", 0, 0)
