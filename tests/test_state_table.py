"""Unit + property tests for the NIU state lookup table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.transaction import ResponseStatus, make_read
from repro.niu.state_table import StateTable, StateTableFullError


def alloc(table, stream=(), tag=0, slv=1, cycle=0):
    txn = make_read(0x100)
    return table.allocate(txn, tag=tag, slv_addr=slv, offset=0, stream=stream,
                          cycle=cycle)


class TestAllocation:
    def test_capacity_enforced(self):
        t = StateTable("t", capacity=2)
        alloc(t)
        alloc(t)
        assert not t.can_allocate()
        with pytest.raises(StateTableFullError):
            alloc(t)

    def test_release_frees_capacity(self):
        t = StateTable("t", capacity=1)
        e = alloc(t)
        t.release(e.txn_id)
        assert t.can_allocate()

    def test_double_track_rejected(self):
        t = StateTable("t", capacity=4)
        txn = make_read(0)
        t.allocate(txn, 0, 1, 0, (), 0)
        with pytest.raises(KeyError):
            t.allocate(txn, 0, 1, 0, (), 0)

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            StateTable("t", 4).release(99)

    def test_watermark_and_totals(self):
        t = StateTable("t", capacity=4)
        a, b = alloc(t), alloc(t)
        t.release(a.txn_id)
        alloc(t)
        assert t.total_allocated == 3
        assert t.high_watermark == 2

    def test_stream_sequence_numbers(self):
        t = StateTable("t", capacity=8)
        a = alloc(t, stream=(1,))
        b = alloc(t, stream=(2,))
        c = alloc(t, stream=(1,))
        assert (a.stream_seq, b.stream_seq, c.stream_seq) == (0, 0, 1)


class TestResponseMatching:
    def test_matches_oldest_with_tag_and_target(self):
        t = StateTable("t", capacity=4)
        a = alloc(t, tag=1, slv=2)
        b = alloc(t, tag=1, slv=2)
        assert t.match_response(1, 2) is a
        t.mark_responded(a.txn_id, ResponseStatus.OKAY, [0])
        assert t.match_response(1, 2) is b

    def test_no_match_raises(self):
        t = StateTable("t", capacity=4)
        alloc(t, tag=1, slv=2)
        with pytest.raises(KeyError):
            t.match_response(0, 2)

    def test_txn_id_hint_detects_fabric_reorder(self):
        t = StateTable("t", capacity=4)
        alloc(t, tag=1, slv=2)
        b = alloc(t, tag=1, slv=2)
        with pytest.raises(AssertionError):
            t.match_response(1, 2, txn_id_hint=b.txn_id)

    def test_double_response_rejected(self):
        t = StateTable("t", capacity=4)
        a = alloc(t)
        t.mark_responded(a.txn_id, ResponseStatus.OKAY, None)
        with pytest.raises(KeyError):
            t.mark_responded(a.txn_id, ResponseStatus.OKAY, None)


class TestDeliverableOrdering:
    def test_only_oldest_of_stream_deliverable(self):
        t = StateTable("t", capacity=4)
        a = alloc(t, stream=(0,))
        b = alloc(t, stream=(0,))
        t.mark_responded(b.txn_id, ResponseStatus.OKAY, None)
        assert t.deliverable() == []  # b waits for a
        t.mark_responded(a.txn_id, ResponseStatus.OKAY, None)
        assert [e.txn_id for e in t.deliverable()] == [a.txn_id]
        t.release(a.txn_id)
        assert [e.txn_id for e in t.deliverable()] == [b.txn_id]

    def test_streams_deliver_independently(self):
        t = StateTable("t", capacity=4)
        alloc(t, stream=(0,))
        b = alloc(t, stream=(1,))
        t.mark_responded(b.txn_id, ResponseStatus.OKAY, None)
        assert [e.txn_id for e in t.deliverable()] == [b.txn_id]

    def test_outstanding_targets(self):
        t = StateTable("t", capacity=4)
        alloc(t, stream=(0,), slv=3)
        alloc(t, stream=(0,), slv=5)
        alloc(t, stream=(1,), slv=7)
        assert t.outstanding_targets((0,)) == [3, 5]
        assert t.stream_population((0,)) == 2


@given(
    streams=st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                     max_size=12),
    order_seed=st.randoms(use_true_random=False),
)
def test_property_delivery_respects_stream_order(streams, order_seed):
    """Whatever order responses arrive in, draining deliverable() always
    yields each stream's entries in issue order — the table *is* the
    reorder buffer."""
    t = StateTable("t", capacity=len(streams))
    entries = [alloc(t, stream=(s,)) for s in streams]
    arrival = list(entries)
    order_seed.shuffle(arrival)
    delivered = []
    for e in arrival:
        t.mark_responded(e.txn_id, ResponseStatus.OKAY, None)
        # Drain until stable: releasing a stream head can unblock the
        # next entry of the same stream (as the NIU engine does).
        while True:
            ready_list = t.deliverable()
            if not ready_list:
                break
            for ready in ready_list:
                delivered.append(ready)
                t.release(ready.txn_id)
    assert len(delivered) == len(entries)
    per_stream = {}
    for e in delivered:
        per_stream.setdefault(e.stream, []).append(e.stream_seq)
    for seqs in per_stream.values():
        assert seqs == sorted(seqs)
