"""Unit tests for the SlvAddr/MstAddr/Tag assignment policy."""

import pytest

from repro.core.ordering import OrderingModel
from repro.core.transaction import make_read
from repro.niu.state_table import StateTable
from repro.niu.tag_policy import TagPolicy, minimal_policy, performance_policy


def txn(thread=0, tag=0):
    t = make_read(0x100)
    t.thread = thread
    t.txn_tag = tag
    return t


class TestTagAssignment:
    def test_fully_ordered_always_tag_zero(self):
        p = TagPolicy(ordering=OrderingModel.FULLY_ORDERED)
        assert p.tag_for(txn(thread=3, tag=7)) == 0

    def test_threaded_uses_thread(self):
        p = TagPolicy(ordering=OrderingModel.THREADED, tag_bits=2)
        assert p.tag_for(txn(thread=1)) == 1
        assert p.tag_for(txn(thread=5)) == 1  # folded mod 4

    def test_id_based_uses_tid(self):
        p = TagPolicy(ordering=OrderingModel.ID_BASED, tag_bits=2)
        assert p.tag_for(txn(tag=3)) == 3
        assert p.tag_for(txn(tag=6)) == 2

    def test_stream_of_follows_model(self):
        p = TagPolicy(ordering=OrderingModel.THREADED)
        assert p.stream_of(txn(thread=2, tag=9)) == (2,)


class TestAdmission:
    def test_table_capacity_gates(self):
        p = TagPolicy(ordering=OrderingModel.FULLY_ORDERED, max_outstanding=1)
        table = StateTable("t", capacity=1)
        t1 = txn()
        assert p.admit(t1, 1, table)
        table.allocate(t1, 0, 1, 0, p.stream_of(t1), 0)
        assert not p.admit(txn(), 1, table)

    def test_per_stream_budget(self):
        p = TagPolicy(
            ordering=OrderingModel.THREADED,
            max_outstanding=8,
            per_stream_outstanding=1,
        )
        table = StateTable("t", capacity=8)
        t1 = txn(thread=0)
        table.allocate(t1, 0, 1, 0, p.stream_of(t1), 0)
        assert not p.admit(txn(thread=0), 1, table)
        assert p.admit(txn(thread=1), 1, table)

    def test_single_target_rule(self):
        p = TagPolicy(
            ordering=OrderingModel.FULLY_ORDERED,
            max_outstanding=8,
            per_stream_outstanding=8,
            multi_target=False,
        )
        table = StateTable("t", capacity=8)
        t1 = txn()
        table.allocate(t1, 0, 3, 0, p.stream_of(t1), 0)
        assert p.admit(txn(), 3, table)  # same target: fine
        assert not p.admit(txn(), 4, table)  # target switch: stall

    def test_multi_target_allows_switch(self):
        p = TagPolicy(
            ordering=OrderingModel.FULLY_ORDERED,
            max_outstanding=8,
            per_stream_outstanding=8,
            multi_target=True,
        )
        table = StateTable("t", capacity=8)
        t1 = txn()
        table.allocate(t1, 0, 3, 0, p.stream_of(t1), 0)
        assert p.admit(txn(), 4, table)


class TestGateModelHooks:
    def test_reorder_entries_follow_multi_target(self):
        assert minimal_policy(OrderingModel.FULLY_ORDERED).reorder_entries == 0
        assert performance_policy(OrderingModel.ID_BASED, 16).reorder_entries == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            TagPolicy(ordering=OrderingModel.ID_BASED, max_outstanding=0)
        with pytest.raises(ValueError):
            TagPolicy(ordering=OrderingModel.ID_BASED, per_stream_outstanding=0)
        with pytest.raises(ValueError):
            TagPolicy(ordering=OrderingModel.ID_BASED, tag_bits=0)

    def test_describe(self):
        text = minimal_policy(OrderingModel.THREADED).describe()
        assert "THREADED" in text and "outstanding=1" in text
